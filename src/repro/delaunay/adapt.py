"""Metric-driven local mesh adaptation (split / collapse / flip / smooth).

The anisotropic adaptation workload of the paper's related work (Tsolakis
& Chrisochoides, arXiv:2404.18030): given a mesh and a vertex metric
field (:class:`repro.metric.MetricField`), apply local operations until
the mesh is (approximately) *unit* in the metric — every edge with metric
length inside ``[1/sqrt(2), sqrt(2)]``:

* **split** edges longer than ``l_max`` at their midpoint — constrained
  segments split through the same region-safe path as Ruppert refinement,
  interior edges through the kernel's cavity-engine point insertion;
* **collapse** edges shorter than ``l_min`` by removing a free endpoint
  and retriangulating its star polygon (ear clipping with exact
  orientation guards);
* **flip** edges when the worst metric quality of the two adjacent
  triangles improves (anisotropic Lawson sweep);
* **smooth** free vertices toward the metric-weighted centroid of their
  neighbours, with step-halving validity guards.

:class:`MeshAdaptor` extends :class:`repro.delaunay.refine.Refiner` — it
inherits the interior/hole region bookkeeping, the constraint-aware
segment splitting, and the cavity-engine insertion path, and adds the
structural operations refinement never needs (collapse, quality flips,
vertex relocation).  :func:`adapt_mesh` is the one-call driver used by
:mod:`repro.solver.adapt` and the CLI.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field as dataclass_field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..geometry.predicates import orient2d
from ..runtime.counters import current as counters_current
from .constrained import triangulate_pslg
from .kernel import GHOST, TriangulationError
from .mesh import TriMesh
from .refine import Refiner

__all__ = ["AdaptReport", "MeshAdaptor", "adapt_mesh", "LOW_BAND", "HIGH_BAND"]

#: Unit-mesh acceptance band for metric edge lengths.
LOW_BAND = 1.0 / math.sqrt(2.0)
HIGH_BAND = math.sqrt(2.0)


@dataclass
class AdaptReport:
    """Operation counters and conformity trace for one adaptation run."""

    passes: int = 0
    splits: int = 0
    collapses: int = 0
    flips: int = 0
    smooth_moves: int = 0
    conformity_before: float = 0.0
    conformity_after: float = 0.0
    #: In-band edge fraction after each pass (monitoring/stats).
    conformity_trace: List[float] = dataclass_field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return {
            "passes": self.passes,
            "splits": self.splits,
            "collapses": self.collapses,
            "flips": self.flips,
            "smooth_moves": self.smooth_moves,
            "conformity_before": self.conformity_before,
            "conformity_after": self.conformity_after,
            "conformity_trace": list(self.conformity_trace),
        }


class MeshAdaptor(Refiner):
    """Local-operation adaptation driver over a constrained triangulation.

    Parameters mirror :class:`Refiner` (region bookkeeping is shared);
    ``field`` prescribes the target metric, ``l_min``/``l_max`` the
    collapse/split thresholds in metric length.
    """

    def __init__(
        self,
        tri,
        metric_field,
        *,
        holes: Sequence[Tuple[float, float]] = (),
        l_min: float = LOW_BAND,
        l_max: float = HIGH_BAND,
        protect_segments: bool = False,
        max_steiner: int = 2_000_000,
    ) -> None:
        super().__init__(
            tri,
            holes=holes,
            quality_bound=None,
            area_fn=None,
            max_steiner=max_steiner,
        )
        if not (0.0 < l_min < l_max):
            raise ValueError("need 0 < l_min < l_max")
        self.field = metric_field
        self.l_min = float(l_min)
        self.l_max = float(l_max)
        # When True, constrained segments are never split: callers whose
        # downstream stages match boundary vertices by exact coordinates
        # (e.g. the potential-flow body classification) keep their rings
        # verbatim.
        self.protect_segments = bool(protect_segments)
        self.report = AdaptReport()

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def _vertex_tensors(self) -> np.ndarray:
        """Metric tensors interpolated at every kernel vertex."""
        pts = np.asarray(self.tri.pts, dtype=np.float64)
        return self.field.interpolate(pts)

    def _interior_edges(self) -> List[Tuple[int, int]]:
        """Sorted unique edges of interior (non-hole, non-ghost) triangles."""
        tri = self.tri
        edges = set()
        for t in tri.live_triangles():
            tv = tri.tri_v[t]
            if tv is None or GHOST in tv or not self._is_interior(t):
                continue
            for k in range(3):
                u, v = tv[k], tv[(k + 1) % 3]
                edges.add((u, v) if u < v else (v, u))
        return sorted(edges)

    def _metric_lengths(self, edges: Sequence[Tuple[int, int]],
                        tensors: np.ndarray) -> np.ndarray:
        """Metric edge lengths (Alauzet linear-metric quadrature)."""
        if not len(edges):
            return np.empty(0)
        e = np.asarray(edges, dtype=np.int64)
        pts = np.asarray(self.tri.pts, dtype=np.float64)
        from ..metric import tensor as _mt

        vec = pts[e[:, 1]] - pts[e[:, 0]]
        l0 = np.sqrt(np.maximum(_mt.quad_form(tensors[e[:, 0]], vec), 0.0))
        l1 = np.sqrt(np.maximum(_mt.quad_form(tensors[e[:, 1]], vec), 0.0))
        lo = np.minimum(l0, l1)
        hi = np.maximum(l0, l1)
        out = 0.5 * (l0 + l1)
        graded = hi > lo * (1.0 + 1e-8)
        with np.errstate(divide="ignore", invalid="ignore"):
            r = hi[graded] / np.maximum(lo[graded], 1e-300)
            out[graded] = lo[graded] * (r - 1.0) / np.log(r)
        return out

    def conformity(self) -> float:
        """Fraction of interior edges with metric length in the band."""
        edges = self._interior_edges()
        if not edges:
            return 1.0
        lengths = self._metric_lengths(edges, self._vertex_tensors())
        inband = (lengths >= LOW_BAND) & (lengths <= HIGH_BAND)
        return float(inband.mean())

    def _protected_vertices(self) -> set:
        """Vertices that collapse/smooth must not move or remove:
        constraint endpoints and hull vertices."""
        tri = self.tri
        protected = set()
        for u, v in tri.constraints:
            protected.add(u)
            protected.add(v)
        for t in tri.live_triangles():
            tv = tri.tri_v[t]
            if tv is not None and GHOST in tv:
                for w in tv:
                    if w != GHOST:
                        protected.add(w)
        return protected

    # ------------------------------------------------------------------
    # Individual operations (each returns True when it changed the mesh)
    # ------------------------------------------------------------------
    def split_edge(self, u: int, v: int) -> bool:
        """Split edge (u, v) at its midpoint.

        Constrained segments go through the region-safe subsegment path;
        interior edges through cavity insertion.  Returns ``False`` when
        the edge no longer exists or the midpoint collides with an
        existing vertex.
        """
        tri = self.tri
        loc = self._find_any_edge_triangle(u, v)
        if loc is None:
            return False
        pu, pv = tri.pts[u], tri.pts[v]
        mx, my = 0.5 * (pu[0] + pv[0]), 0.5 * (pu[1] + pv[1])
        key = (u, v) if u < v else (v, u)
        if key in tri.constraints:
            if self.protect_segments:
                self.locked_skips += 1
                return False
            self._insert_on_segment(u, v, mx, my)
            self.report.splits += 1
            return True
        if tri.is_ghost(loc):
            return False
        if tri.find_vertex_at((mx, my), loc) is not None:
            return False
        try:
            self._insert_tracked(mx, my, interior_hint=loc)
        except TriangulationError:
            return False
        self.report.splits += 1
        return True

    def collapse_edge(self, u: int, v: int,
                      protected: Optional[set] = None) -> bool:
        """Collapse edge (u, v) by removing a free endpoint.

        Prefers removing ``v``; falls back to ``u``.  A vertex is free
        when it is not a constraint endpoint, not on the hull, and its
        star is uniformly labelled ghost-free interior.  Returns
        ``False`` when neither endpoint can be removed safely.
        """
        if protected is None:
            protected = self._protected_vertices()
        for victim in (v, u):
            if victim in protected:
                continue
            if self._remove_vertex(victim):
                self.report.collapses += 1
                return True
        return False

    def _remove_vertex(self, v: int) -> bool:
        """Delete vertex ``v`` and retriangulate its star polygon.

        The star ring (ordered CCW by the kernel's triangle orientation)
        is ear-clipped with exact orientation tests; the new fan is wired
        into the surrounding adjacency atomically — nothing mutates until
        a complete valid retriangulation exists.
        """
        tri = self.tri
        star = tri.triangles_around_vertex(v)
        if len(star) < 3:
            return False
        label: Optional[bool] = None
        ring_next: Dict[int, int] = {}
        outer: Dict[Tuple[int, int], int] = {}
        for t in star:
            tv = tri.tri_v[t]
            if tv is None or GHOST in tv:
                return False
            lab = self._is_interior(t)
            if label is None:
                label = lab
            elif lab != label:
                return False  # star crosses a region boundary
            i = tv.index(v)
            a, b = tv[(i + 1) % 3], tv[(i + 2) % 3]
            if a in ring_next:
                return False  # non-manifold star
            ring_next[a] = b
            outer[(a, b)] = tri.tri_n[t][i]
        start = min(ring_next)
        ring = [start]
        while True:
            nxt = ring_next[ring[-1]]
            if nxt == start:
                break
            ring.append(nxt)
            if len(ring) > len(ring_next):
                return False  # broken ring
        if len(ring) != len(star):
            return False

        pts = tri.pts
        poly = list(ring)
        new_tris: List[Tuple[int, int, int]] = []
        guard = 0
        while len(poly) > 3:
            guard += 1
            if guard > 2 * len(ring) * len(ring) + 16:
                return False
            n = len(poly)
            clipped = False
            for i in range(n):
                a, b, c = poly[i - 1], poly[i], poly[(i + 1) % n]
                pa, pb, pc = pts[a], pts[b], pts[c]
                if orient2d(pa, pb, pc) <= 0:
                    continue
                ok = True
                for w in poly:
                    if w in (a, b, c):
                        continue
                    pw = pts[w]
                    if (orient2d(pa, pb, pw) >= 0
                            and orient2d(pb, pc, pw) >= 0
                            and orient2d(pc, pa, pw) >= 0):
                        ok = False
                        break
                if ok:
                    new_tris.append((a, b, c))
                    poly.pop(i)
                    clipped = True
                    break
            if not clipped:
                return False
        a, b, c = poly
        if orient2d(pts[a], pts[b], pts[c]) <= 0:
            return False
        new_tris.append((a, b, c))

        # Commit: kill the star, create the fan, wire adjacency.
        for t in star:
            tri._kill_triangle(t)
            self._interior.pop(t, None)
            self._unfixable.discard(t)
        created = [tri._new_triangle(*tv) for tv in new_tris]
        for t in created:
            self._interior[t] = bool(label)
        emap: Dict[Tuple[int, int], Tuple[int, int]] = {}
        for t in created:
            for k in range(3):
                emap[tri._edge(t, k)] = (t, k)
        tn = tri._arr.tn
        for (eu, ev), (t, k) in sorted(emap.items()):
            rev = emap.get((ev, eu))
            if rev is not None:
                tn[3 * t + k] = rev[0]
                continue
            nb = outer[(eu, ev)]
            tn[3 * t + k] = nb
            if nb >= 0:
                tn[3 * nb + tri._edge_index(nb, ev, eu)] = t
        tri.vertex_tri[v] = -1
        return True

    def flip_edge(self, u: int, v: int) -> bool:
        """Flip edge (u, v) when legal (convex quad, unconstrained,
        same region on both sides).  Returns ``True`` on success."""
        tri = self.tri
        key = (u, v) if u < v else (v, u)
        if key in tri.constraints:
            return False
        t1 = self._find_any_edge_triangle(u, v)
        if t1 is None or tri.is_ghost(t1):
            return False
        tv = tri.tri_v[t1]
        k1 = next((k for k in range(3) if tv[k] not in (u, v)), None)
        if k1 is None:
            return False
        t2 = tri.tri_n[t1][k1]
        if t2 < 0 or tri.is_ghost(t2):
            return False
        if self._is_interior(t1) != self._is_interior(t2):
            return False
        if not tri.edge_is_flippable(t1, k1):
            return False
        label = self._is_interior(t1)
        n1, n2 = tri.flip(t1, k1)
        self._interior[n1] = label
        self._interior[n2] = label
        self.report.flips += 1
        return True

    # ------------------------------------------------------------------
    # Passes
    # ------------------------------------------------------------------
    def split_pass(self) -> int:
        """Split every edge with metric length above ``l_max``."""
        edges = self._interior_edges()
        if not edges:
            return 0
        lengths = self._metric_lengths(edges, self._vertex_tensors())
        order = np.argsort(-lengths, kind="stable")
        done = 0
        for j in order:
            if lengths[j] <= self.l_max:
                break
            u, v = edges[j]
            if self.split_edge(u, v):
                done += 1
        return done

    def collapse_pass(self) -> int:
        """Collapse edges with metric length below ``l_min``."""
        edges = self._interior_edges()
        if not edges:
            return 0
        lengths = self._metric_lengths(edges, self._vertex_tensors())
        order = np.argsort(lengths, kind="stable")
        protected = self._protected_vertices()
        removed: set = set()
        done = 0
        for j in order:
            if lengths[j] >= self.l_min:
                break
            u, v = edges[j]
            if u in removed or v in removed:
                continue
            loc = self._find_any_edge_triangle(u, v)
            if loc is None:
                continue  # stale edge (star already rebuilt)
            if self.collapse_edge(u, v, protected):
                done += 1
                # Whichever endpoint vanished no longer owns a triangle.
                for w in (u, v):
                    if self.tri.vertex_tri[w] < 0:
                        removed.add(w)
        return done

    def _metric_quality(self, a: int, b: int, c: int,
                        tensors: np.ndarray) -> float:
        """Metric shape quality in [0, 1]; 1 = metric-equilateral."""
        from ..metric import tensor as _mt

        pts = self.tri.pts
        pa, pb, pc = pts[a], pts[b], pts[c]
        area = 0.5 * ((pb[0] - pa[0]) * (pc[1] - pa[1])
                      - (pb[1] - pa[1]) * (pc[0] - pa[0]))
        if area <= 0.0:
            return 0.0
        m = (tensors[a] + tensors[b] + tensors[c]) / 3.0
        det_m = m[0] * m[2] - m[1] * m[1]
        if det_m <= 0.0:
            return 0.0
        vecs = np.array([
            [pb[0] - pa[0], pb[1] - pa[1]],
            [pc[0] - pb[0], pc[1] - pb[1]],
            [pa[0] - pc[0], pa[1] - pc[1]],
        ])
        l_sq = _mt.quad_form(np.repeat(m[None, :], 3, axis=0), vecs)
        denom = float(l_sq.sum())
        if denom <= 0.0:
            return 0.0
        area_m = area * math.sqrt(det_m)
        return 4.0 * math.sqrt(3.0) * area_m / denom

    def flip_pass(self, *, max_sweeps: int = 10, tol: float = 1e-12) -> int:
        """Anisotropic Lawson sweeps: flip while the worst metric quality
        of an edge's two triangles improves."""
        tri = self.tri
        total = 0
        for _ in range(max_sweeps):
            tensors = self._vertex_tensors()
            flipped = 0
            for u, v in self._interior_edges():
                key = (u, v) if u < v else (v, u)
                if key in tri.constraints:
                    continue
                t1 = self._find_any_edge_triangle(u, v)
                if t1 is None or tri.is_ghost(t1):
                    continue
                tv = tri.tri_v[t1]
                k1 = next((k for k in range(3) if tv[k] not in (u, v)), None)
                if k1 is None:
                    continue
                a = tv[k1]
                t2 = tri.tri_n[t1][k1]
                if t2 < 0 or tri.is_ghost(t2):
                    continue
                tv2 = tri.tri_v[t2]
                b = next((w for w in tv2 if w not in (u, v)), None)
                if b is None or b == GHOST:
                    continue
                q_now = min(self._metric_quality(*tv, tensors),
                            self._metric_quality(*tv2, tensors))
                q_new = min(self._metric_quality(a, u, b, tensors),
                            self._metric_quality(b, v, a, tensors))
                if q_new > q_now + tol and self.flip_edge(u, v):
                    flipped += 1
            total += flipped
            if flipped == 0:
                break
        return total

    def smooth_pass(self, *, relaxation: float = 0.5) -> int:
        """Move free vertices toward the metric-weighted neighbour
        centroid; each move is validated (no inverted incident triangle)
        with step halving before acceptance."""
        from ..metric import tensor as _mt

        tri = self.tri
        tensors = self._vertex_tensors()
        protected = self._protected_vertices()
        arr = tri._arr
        px = arr.px
        moves = 0
        n_pts = len(tri.pts)
        for v in range(n_pts):
            if v in protected or tri.vertex_tri[v] < 0:
                continue
            star = tri.triangles_around_vertex(v)
            if not star:
                continue
            ok = True
            neighbours: set = set()
            for t in star:
                tv = tri.tri_v[t]
                if tv is None or GHOST in tv or not self._is_interior(t):
                    ok = False
                    break
                for w in tv:
                    if w != v:
                        neighbours.add(w)
            if not ok or len(neighbours) < 3:
                continue
            nbr = sorted(neighbours)
            pv = np.array(tri.pts[v])
            npts = np.array([tri.pts[w] for w in nbr])
            vecs = npts - pv[None, :]
            m_edge = 0.5 * (np.repeat(tensors[v][None, :], len(nbr), axis=0)
                            + tensors[nbr])
            w_len = np.sqrt(np.maximum(_mt.quad_form(m_edge, vecs), 0.0))
            wsum = float(w_len.sum())
            if wsum <= 0.0:
                continue
            target = (w_len[:, None] * npts).sum(axis=0) / wsum
            step = relaxation
            old = (pv[0], pv[1])
            accepted = False
            for _ in range(3):
                nx = old[0] + step * (target[0] - old[0])
                ny = old[1] + step * (target[1] - old[1])
                px[2 * v] = nx
                px[2 * v + 1] = ny
                valid = True
                for t in star:
                    tv = tri.tri_v[t]
                    if orient2d(tri.pts[tv[0]], tri.pts[tv[1]],
                                tri.pts[tv[2]]) <= 0:
                        valid = False
                        break
                if valid:
                    accepted = True
                    break
                step *= 0.5
            if accepted:
                moves += 1
            else:
                px[2 * v] = old[0]
                px[2 * v + 1] = old[1]
        self.report.smooth_moves += moves
        return moves

    # ------------------------------------------------------------------
    # Driver
    # ------------------------------------------------------------------
    def adapt(self, *, max_passes: int = 3,
              smooth_iterations: int = 1) -> AdaptReport:
        """Run split -> collapse -> flip -> smooth passes to conformity.

        Stops early when a pass performs no structural operation.  The
        report accumulates counters across passes and records the
        conformity trace.
        """
        rep = self.report
        rep.conformity_before = self.conformity()
        for _ in range(max_passes):
            rep.passes += 1
            n_split = self.split_pass()
            n_coll = self.collapse_pass()
            n_flip = self.flip_pass()
            for _ in range(max(int(smooth_iterations), 0)):
                self.smooth_pass()
            rep.conformity_trace.append(self.conformity())
            if n_split == 0 and n_coll == 0 and n_flip == 0:
                break
        rep.conformity_after = (rep.conformity_trace[-1]
                                if rep.conformity_trace
                                else rep.conformity_before)
        sink = counters_current()
        if sink is not None:
            sink.absorb_kernel(self.tri)
            sink.incr("adapt_passes", rep.passes)
            sink.incr("adapt_splits", rep.splits)
            sink.incr("adapt_collapses", rep.collapses)
            sink.incr("adapt_flips", rep.flips)
            sink.incr("adapt_smooth_moves", rep.smooth_moves)
        return rep


def adapt_mesh(
    mesh: TriMesh,
    metric_field,
    *,
    holes: Sequence[Tuple[float, float]] = (),
    l_min: float = LOW_BAND,
    l_max: float = HIGH_BAND,
    max_passes: int = 3,
    smooth_iterations: int = 1,
    protect_segments: bool = False,
    max_steiner: int = 2_000_000,
) -> Tuple[TriMesh, AdaptReport]:
    """Adapt ``mesh`` to ``metric_field``; returns (new mesh, report).

    The mesh's constrained segments are preserved through the rebuild
    (they are re-marked as constraints and never collapsed; they may
    gain split vertices when the metric asks for finer boundary spacing,
    unless ``protect_segments`` forbids it).  ``holes`` are the region
    seed points of the original geometry, exactly as given to
    :func:`repro.delaunay.refine_pslg`.
    """
    tri = triangulate_pslg(mesh.points, mesh.segments)
    adaptor = MeshAdaptor(
        tri,
        metric_field,
        holes=holes,
        l_min=l_min,
        l_max=l_max,
        protect_segments=protect_segments,
        max_steiner=max_steiner,
    )
    adaptor.adapt(max_passes=max_passes, smooth_iterations=smooth_iterations)
    return adaptor.to_mesh(), adaptor.report
