"""Divide-and-conquer style driver options for the triangulator.

Shewchuk's Triangle triangulates with divide-and-conquer; the paper makes
two Triangle-specific optimisations (Section III):

1. it removes Triangle's internal x-sort because the decomposition already
   maintains x-sorted vertices, and
2. it forces *vertical cuts only*, which is faster for the small vertex
   sets produced by over-decomposition.

Our kernel is incremental rather than D&C, so the corresponding knobs are
the **insertion order**: x-sorted insertion (``order="sorted"``, walks are
O(1) because each point lands beside its predecessor — the analogue of
reusing the maintained sort), Hilbert-flavoured block shuffling
(``order="brio"``, robust for arbitrary inputs), or plain random.  This
module provides those policies plus the benchmark hooks the ablation study
uses (DESIGN.md: "Sorted-input reuse for the triangulator").
"""

from __future__ import annotations

from typing import Dict, Iterable, Literal, Optional

import numpy as np

from .kernel import Triangulation
from .mesh import TriMesh

__all__ = ["insertion_order", "triangulate_ordered"]

OrderPolicy = Literal["sorted", "random", "brio", "given"]


def insertion_order(points: np.ndarray, policy: OrderPolicy = "brio",
                    *, seed: int = 0) -> np.ndarray:
    """Compute an insertion order for ``points`` under ``policy``.

    - ``"sorted"``: lexicographic (x, y) — mirrors the paper's reuse of the
      maintained x-sorted arrays ("we removed the sorting step from
      Triangle").
    - ``"random"``: uniform shuffle.
    - ``"brio"``: biased randomised insertion order — random within
      geometrically growing rounds, each round spatially sorted; keeps
      walks short *and* cavity sizes bounded in expectation.
    - ``"given"``: identity.
    """
    n = len(points)
    if policy == "given":
        return np.arange(n)
    if policy == "sorted":
        return np.lexsort((points[:, 1], points[:, 0]))
    rng = np.random.default_rng(seed)
    perm = rng.permutation(n)
    if policy == "random":
        return perm
    if policy == "brio":
        # Rounds of size 8, 16, 32, ... over the shuffled sequence, each
        # round sorted along a snake of x to localise successive inserts.
        order = []
        start = 0
        size = 8
        while start < n:
            block = perm[start:start + size]
            block = block[np.argsort(points[block, 0])]
            order.append(block)
            start += size
            size *= 2
        return np.concatenate(order) if order else np.arange(0)
    raise ValueError(f"unknown insertion-order policy: {policy}")


def triangulate_ordered(points: np.ndarray, policy: OrderPolicy = "brio",
                        *, seed: int = 0) -> TriMesh:
    """Triangulate with an explicit insertion-order policy.

    Returns a :class:`TriMesh` whose vertex indices match ``points``.
    """
    points = np.asarray(points, dtype=np.float64)
    order = insertion_order(points, policy, seed=seed)
    tri = Triangulation()
    kernel_id: Dict[int, int] = {}
    for i in order:
        kernel_id[int(i)] = tri.insert_point(points[i, 0], points[i, 1])
    # kernel vertex id -> smallest original index that produced it.
    arr = tri._arr
    lut = np.full(arr.n_pts, -1, dtype=np.int64)
    for i, k in kernel_id.items():
        if lut[k] < 0 or i < lut[k]:
            lut[k] = i
    # Live real rows in id order, remapped in one fancy-index pass.
    tv = arr.tri_v[: arr.n_tris]
    rows = tv[tv.min(axis=1) >= 0]
    tarr = (lut[rows].astype(np.int32)
            if rows.size else np.empty((0, 3), dtype=np.int32))
    return TriMesh(points, tarr)
