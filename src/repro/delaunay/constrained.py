"""Constrained Delaunay triangulation: segment recovery and carving.

Builds on the incremental kernel: after inserting all PSLG vertices, each
input segment is *recovered* (forced to appear as an edge) by flipping the
edges that cross it — the classic Lawson walk-and-flip scheme — and then
locked against future flips and cavity crossings.  Vertices that happen to
lie exactly on a segment split it (the CDT of a PSLG must contain the
sub-segments).

After recovery, :func:`carve` classifies triangles as interior/exterior by
flooding from the ghost layer (and from user hole seeds) without crossing
constrained edges — the same behaviour the paper relies on from Triangle:
"Triangle first creates an initial triangulation and then removes elements
inside concavities and holes" (Section II.E).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..geometry.predicates import incircle, orient2d
from ..runtime.counters import current as counters_current
from .cavity import (
    brio_order,
    find_directed_edge,
    get_strategy,
    resolve_strategy_name,
)
from .kernel import GHOST, Triangulation, TriangulationError
from .mesh import TriMesh

__all__ = [
    "insert_segment",
    "triangulate_pslg",
    "carve",
    "constrained_delaunay",
]


def _first_obstruction(tri: Triangulation, a: int, b: int):
    """First thing segment ``a -> b`` hits when leaving vertex ``a``.

    Returns ``("edge", (p, q))`` for a crossing edge or ``("vertex", w)``
    for a vertex lying exactly on the open segment.
    """
    pa, pb = tri.pts[a], tri.pts[b]
    for t in tri.triangles_around_vertex(a):
        tv = tri.tri_v[t]
        if GHOST in tv:
            continue
        i = tv.index(a)
        p = tv[(i + 1) % 3]
        q = tv[(i + 2) % 3]
        op = orient2d(pa, pb, tri.pts[p])
        oq = orient2d(pa, pb, tri.pts[q])
        # In the CCW triangle (a, p, q) the interior wedge at ``a`` runs
        # from direction a->p (clockwise boundary) to a->q (counter-
        # clockwise boundary): the ray a->b lies inside iff p is weakly
        # right of the line a->b and q weakly left.
        if op > 0 or oq < 0:
            continue
        if op == 0 and _ahead(pa, pb, tri.pts[p]):
            return ("vertex", p)
        if oq == 0 and _ahead(pa, pb, tri.pts[q]):
            return ("vertex", q)
        if op < 0 and oq > 0:
            # The ray exits through the opposite edge (p, q).
            return ("edge", (p, q))
    raise TriangulationError(
        f"no obstruction found for segment {a}->{b} (corrupt star?)"
    )


def _ahead(pa, pb, pw) -> bool:
    """Is ``pw`` strictly ahead of ``pa`` in the direction of ``pb``?"""
    return (pb[0] - pa[0]) * (pw[0] - pa[0]) + (pb[1] - pa[1]) * (pw[1] - pa[1]) > 0


def _edge_crosses(tri: Triangulation, p: int, q: int, a: int, b: int) -> bool:
    """Does edge (p, q) properly cross segment (a, b)?"""
    if p in (a, b) or q in (a, b):
        return False
    pa, pb = tri.pts[a], tri.pts[b]
    pp, pq = tri.pts[p], tri.pts[q]
    o1 = orient2d(pa, pb, pp)
    o2 = orient2d(pa, pb, pq)
    o3 = orient2d(pp, pq, pa)
    o4 = orient2d(pp, pq, pb)
    return o1 * o2 < 0 and o3 * o4 < 0


def insert_segment(tri: Triangulation, a: int, b: int,
                   *, legalize: bool = True) -> List[Tuple[int, int]]:
    """Force segment ``(a, b)`` to appear, splitting at collinear vertices.

    Returns the list of constrained sub-segments actually created (just
    ``[(a, b)]`` when no vertex lies on the segment).
    """
    if a == b:
        raise ValueError("degenerate segment")
    created: List[Tuple[int, int]] = []
    work = [(a, b)]
    guard = 0
    while work:
        guard += 1
        if guard > 10_000_000:
            raise TriangulationError("segment insertion did not terminate")
        u, v = work.pop()
        if tri.has_edge(u, v):
            tri.mark_constraint(u, v)
            created.append((u, v))
            continue
        kind, payload = _first_obstruction(tri, u, v)
        if kind == "vertex":
            w = payload
            work.append((u, w))
            work.append((w, v))
            continue
        split_vertex = _recover_by_flips(tri, u, v, first_edge=payload,
                                         legalize=legalize)
        if split_vertex is not None:
            work.append((u, split_vertex))
            work.append((split_vertex, v))
        else:
            tri.mark_constraint(u, v)
            created.append((u, v))
    sink = counters_current()
    if sink is not None:
        sink.incr("segments_recovered")
        if len(created) > 1:
            sink.incr("segment_splits", len(created) - 1)
    return created


def _recover_by_flips(tri: Triangulation, a: int, b: int,
                      first_edge: Tuple[int, int], *,
                      legalize: bool) -> Optional[int]:
    """Flip crossing edges until ``(a, b)`` exists.

    Returns ``None`` on success, or a vertex id that turned out to lie on
    the open segment (caller splits and retries).
    """
    # March across the strip of triangles crossed by a->b collecting edges.
    # Constrained crossings are detected HERE, before any flip mutates the
    # triangulation: a failed insert_segment leaves the structure exactly
    # as it was (strong exception safety for invalid PSLG input).
    def _check_not_constrained(e: Tuple[int, int]) -> None:
        key = (e[0], e[1]) if e[0] < e[1] else (e[1], e[0])
        if key in tri.constraints:
            raise TriangulationError(
                f"input segments cross: ({a},{b}) crosses constrained "
                f"{key} — the PSLG is not valid (segments must be "
                "disjoint except at shared endpoints)"
            )

    crossing: deque = deque()
    _check_not_constrained(first_edge)
    crossing.append(first_edge)
    p, q = first_edge
    # The triangle on a's side is (a, p, q), which owns directed edge (p, q).
    loc = find_directed_edge(tri, p, q)
    if loc is None:
        raise TriangulationError("crossing edge not found")
    t, k = loc
    nb = tri.tri_n[t][k]
    pa, pb = tri.pts[a], tri.pts[b]
    march_guard = 0
    while True:
        march_guard += 1
        if march_guard > 4 * (tri.n_live_triangles + 8):
            raise TriangulationError("segment march did not terminate")
        # nb is the triangle on the far side of (p, q): it owns the reversed
        # directed edge (q, p); its apex is the vertex opposite that edge.
        kk = tri._edge_index(nb, q, p)
        r = tri.tri_v[nb][kk]
        if r == b:
            break
        if r == GHOST:
            raise TriangulationError(
                f"segment {a}->{b} leaves the triangulation hull"
            )
        o = orient2d(pa, pb, tri.pts[r])
        if o == 0:
            if _ahead(pa, pb, tri.pts[r]):
                return r  # vertex exactly on the segment
            raise TriangulationError("collinear vertex behind segment")
        # Choose the edge of nb separating from b: between (p, r) and (r, q),
        # the crossed one has endpoints on opposite sides of a->b.
        if _edge_crosses(tri, p, r, a, b):
            new_edge = (p, r)
            q = r
        elif _edge_crosses(tri, r, q, a, b):
            new_edge = (r, q)
            p = r
        else:
            raise TriangulationError("march lost the segment")
        _check_not_constrained(new_edge)
        crossing.append(new_edge)
        # nb owns the directed new_edge; step across it to continue the march.
        k = tri._edge_index(nb, new_edge[0], new_edge[1])
        nb = tri.tri_n[nb][k]

    # Flip queue until no edge crosses the segment.
    touched: List[Tuple[int, int]] = []
    guard = 0
    while crossing:
        guard += 1
        if guard > 1000 * (len(crossing) + 10) + 100_000:
            raise TriangulationError("flip recovery did not terminate")
        p, q = crossing.popleft()
        loc = find_directed_edge(tri, p, q)
        if loc is None:
            continue  # edge already flipped away
        if not _edge_crosses(tri, p, q, a, b):
            continue
        _check_not_constrained((p, q))  # flips cannot create constraints,
        # so this is only reachable if the march missed a crossing.
        t, k = loc
        if tri.edge_is_flippable(t, k):
            t1, t2 = tri.flip(t, k)
            # flip() leaves t2 = [apex2, v, apex1]; the new shared edge is
            # (apex1, apex2).
            new_e = (tri.tri_v[t2][2], tri.tri_v[t2][0])
            touched.append(new_e)
            if _edge_crosses(tri, new_e[0], new_e[1], a, b):
                crossing.append(new_e)
        else:
            crossing.append((p, q))
    if not tri.has_edge(a, b):
        raise TriangulationError(f"flip recovery failed to create {a}->{b}")
    tri.mark_constraint(a, b)
    if legalize:
        _legalize_edges(tri, touched)
    tri.unmark_constraint(a, b)  # caller marks; keep function composable
    return None


def _legalize_edges(tri: Triangulation, edges: Sequence[Tuple[int, int]],
                    *, max_ops: int = 1_000_000) -> None:
    """Lawson legalisation: flip non-constrained, non-locally-Delaunay edges."""
    queue: deque = deque(edges)
    ops = 0
    while queue:
        ops += 1
        if ops > max_ops:
            raise TriangulationError("legalisation did not terminate")
        u, v = queue.popleft()
        key = (u, v) if u < v else (v, u)
        if key in tri.constraints:
            continue
        loc = find_directed_edge(tri, u, v)
        if loc is None:
            continue
        t1, k1 = loc
        t2 = tri.tri_n[t1][k1]
        if t2 < 0 or tri.is_ghost(t1) or tri.is_ghost(t2):
            continue
        k2 = tri._edge_index(t2, v, u)
        apex1 = tri.tri_v[t1][k1]
        apex2 = tri.tri_v[t2][k2]
        tv = tri.tri_v[t1]
        if incircle(tri.pts[tv[0]], tri.pts[tv[1]], tri.pts[tv[2]],
                    tri.pts[apex2]) > 0:
            if tri.edge_is_flippable(t1, k1):
                tri.flip(t1, k1)
                for e in ((apex1, u), (u, apex2), (apex2, v), (v, apex1)):
                    queue.append(e)


def triangulate_pslg(points: np.ndarray, segments: np.ndarray,
                     *, assume_sorted: bool = False,
                     strategy: Optional[str] = None) -> Triangulation:
    """Insert all PSLG points, then recover and lock every segment.

    Point insertion goes through the cavity-engine strategy registry
    (``strategy`` / ``REPRO_INSERT``); segment recovery is always
    sequential.  No constraints exist during the bulk phase, so the
    batched strategy is safe here.
    """
    points = np.asarray(points, dtype=np.float64)
    segments = np.asarray(segments, dtype=np.int64)
    tri = Triangulation()
    if assume_sorted:
        order = np.arange(len(points))
    else:
        order = brio_order(points, seed=0xFACADE)
    name = resolve_strategy_name(strategy)
    kernel_id: Dict[int, int] = get_strategy(name).insert_points(
        tri, points, order)
    for u, v in segments:
        ku, kv = kernel_id[int(u)], kernel_id[int(v)]
        for su, sv in insert_segment(tri, ku, kv):
            tri.mark_constraint(su, sv)
    return tri


def carve(tri: Triangulation, holes: Sequence[Tuple[float, float]] = ()
          ) -> np.ndarray:
    """Interior mask over triangle ids (True = keep), as a bool array.

    Floods "outside" from the ghost layer across non-constrained edges,
    then floods each hole region from its seed point.  Pass the mask to
    :meth:`Triangulation.to_mesh` (which consumes it without copying).
    """
    n = tri._arr.n_tris
    keep = np.zeros(n, dtype=bool)
    outside = np.zeros(n, dtype=bool)
    stack: List[int] = []
    for t in tri.live_triangles():
        if tri.is_ghost(t):
            outside[t] = True
            stack.append(t)
    while stack:
        t = stack.pop()
        for k in range(3):
            nb = tri.tri_n[t][k]
            if nb < 0 or outside[nb]:
                continue
            u, v = tri._edge(t, k)
            if u != GHOST and v != GHOST:
                key = (u, v) if u < v else (v, u)
                if key in tri.constraints:
                    continue
            outside[nb] = True
            stack.append(nb)
    for seed in holes:
        t0 = tri.locate((float(seed[0]), float(seed[1])))
        if tri.is_ghost(t0) or outside[t0]:
            continue
        outside[t0] = True
        stack = [t0]
        while stack:
            t = stack.pop()
            for k in range(3):
                nb = tri.tri_n[t][k]
                if nb < 0 or outside[nb]:
                    continue
                u, v = tri._edge(t, k)
                key = (u, v) if u < v else (v, u)
                if key in tri.constraints:
                    continue
                outside[nb] = True
                stack.append(nb)
    for t in tri.live_triangles():
        if not tri.is_ghost(t) and not outside[t]:
            keep[t] = True
    return keep


def constrained_delaunay(points: np.ndarray, segments: np.ndarray,
                         holes: Sequence[Tuple[float, float]] = (),
                         *, assume_sorted: bool = False,
                         strategy: Optional[str] = None) -> TriMesh:
    """One-call CDT of a PSLG with exterior/hole carving."""
    tri = triangulate_pslg(points, segments, assume_sorted=assume_sorted,
                           strategy=strategy)
    mask = carve(tri, holes)
    return tri.to_mesh(keep_mask=mask)
