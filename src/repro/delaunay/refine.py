"""Ruppert's Delaunay refinement with a sizing-function area bound.

This provides the "Triangle -q -a" capability the paper depends on
(Sections II.D-II.E): given a constrained Delaunay triangulation of a
subdomain, insert Steiner points until

* no constrained sub-segment is *encroached* (has a vertex strictly inside
  its diametral circle), and
* every interior triangle satisfies the circumradius-to-shortest-edge
  bound ``B`` (default sqrt(2), Ruppert's guaranteed-termination bound,
  minimum angle ~20.7 degrees) and the area bound ``area_fn(centroid)``.

Processing order follows Ruppert: encroached segments split at their
midpoint first; then bad triangles get their circumcenter, unless the
circumcenter would encroach a segment, in which case the segment splits
instead.  Interior/exterior classification is maintained incrementally: a
cavity never crosses a constrained edge, so every retriangulated cavity
inherits a uniform region label.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..geometry.predicates import exact_eq
from ..geometry.primitives import circumcenter, distance, distance_sq
from ..runtime.counters import current as counters_current
from .cavity import find_directed_edge
from .constrained import carve, triangulate_pslg
from .kernel import GHOST, Triangulation, TriangulationError
from .mesh import TriMesh

__all__ = [
    "RefinementError",
    "Refiner",
    "refine_pslg",
    "RUPPERT_BOUND",
    "SizingCriterion",
    "AreaCriterion",
    "MetricCriterion",
]

#: Ruppert's circumradius-to-shortest-edge termination bound (paper Eq. 1
#: context): sqrt(2) corresponds to a 20.7-degree minimum angle.
RUPPERT_BOUND = math.sqrt(2.0)


class RefinementError(RuntimeError):
    """Refinement failed to terminate within its insertion budget."""


AreaFn = Callable[[float, float], float]

Point = Tuple[float, float]


class SizingCriterion:
    """Decides whether a triangle is too large for a sizing field.

    The refiner consults exactly one criterion per triangle, handing it
    the three corner coordinates and the (positive) Euclidean area it
    already computed.  Implementations return ``True`` when the triangle
    must be split for *size* reasons; the shape (circumradius-to-edge)
    test stays in the refiner and is criterion-independent.
    """

    def oversized(self, pa: Point, pb: Point, pc: Point, area: float
                  ) -> bool:
        raise NotImplementedError


class AreaCriterion(SizingCriterion):
    """Scalar area bound ``area_fn(centroid)`` — the classic Triangle
    ``-a`` semantics.  The arithmetic (centroid then compare) is kept
    bit-identical to the pre-criterion refiner so meshes hash the same.
    """

    def __init__(self, area_fn: AreaFn) -> None:
        self.area_fn = area_fn

    def oversized(self, pa: Point, pb: Point, pc: Point, area: float
                  ) -> bool:
        cx = (pa[0] + pb[0] + pc[0]) / 3.0
        cy = (pa[1] + pb[1] + pc[1]) / 3.0
        return area > self.area_fn(cx, cy)


class MetricCriterion(SizingCriterion):
    """Anisotropic bound from a :class:`repro.metric.MetricField`.

    A triangle is oversized when either

    * its longest edge measured in the metric exceeds ``max_edge``
      (default ``sqrt(2)``, the upper end of the unit-mesh band), or
    * its circumradius in the metric of the centroid exceeds
      ``max_circumradius`` (default ``1.0``; a metric-unit equilateral
      triangle has circumradius ``1/sqrt(3)``, so 1.0 only fires on
      clearly oversized or badly shaped elements).

    The circumradius test maps the corners through ``M^{1/2}`` frozen at
    the centroid and measures the Euclidean circumradius there.
    """

    def __init__(self, field, *, max_edge: float = RUPPERT_BOUND,
                 max_circumradius: float = 1.0, k: int = 3) -> None:
        if max_edge <= 0 or max_circumradius <= 0:
            raise ValueError("metric criterion bounds must be positive")
        self.field = field
        self.max_edge = float(max_edge)
        self.max_circumradius = float(max_circumradius)
        self.k = int(k)

    def oversized(self, pa: Point, pb: Point, pc: Point, area: float
                  ) -> bool:
        cx = (pa[0] + pb[0] + pc[0]) / 3.0
        cy = (pa[1] + pb[1] + pc[1]) / 3.0
        corners = np.array([pa, pb, pc], dtype=np.float64)
        query = np.vstack([corners, [[cx, cy]]])
        tensors = self.field.interpolate(query, k=self.k)
        # Metric edge lengths: average of endpoint quadratic forms.
        from ..metric import tensor as _mt

        vecs = corners[[1, 2, 0]] - corners[[0, 1, 2]]
        l_sq_a = _mt.quad_form(tensors[[0, 1, 2]], vecs)
        l_sq_b = _mt.quad_form(tensors[[1, 2, 0]], vecs)
        l_m = 0.5 * (np.sqrt(np.maximum(l_sq_a, 0.0))
                     + np.sqrt(np.maximum(l_sq_b, 0.0)))
        if float(l_m.max()) > self.max_edge:
            return True
        # Circumradius under the centroid metric.
        root = _mt.sqrtm(tensors[3:4])
        r11, r12, r22 = root[0, 0], root[0, 1], root[0, 2]
        qa, qb, qc = (
            (r11 * p[0] + r12 * p[1], r12 * p[0] + r22 * p[1])
            for p in (pa, pb, pc)
        )
        try:
            cc = circumcenter(qa, qb, qc)
        except ValueError:
            return False  # metric-degenerate: leave to the shape test
        if not (math.isfinite(cc[0]) and math.isfinite(cc[1])):
            return False
        return distance(cc, qa) > self.max_circumradius


class Refiner:
    """Delaunay refinement driver over a :class:`Triangulation`.

    Parameters
    ----------
    tri:
        A constrained triangulation (segments already recovered/locked).
    holes:
        Seed points of hole regions (excluded from refinement and output).
    quality_bound:
        Circumradius-to-shortest-edge bound B; ``None`` disables quality
        refinement (area-only).
    area_fn:
        Maximum triangle area at a location, or ``None`` for no area bound.
        Shorthand for ``criterion=AreaCriterion(area_fn)``.
    criterion:
        A :class:`SizingCriterion` deciding the size test directly (e.g.
        :class:`MetricCriterion` for anisotropic sizing).  Mutually
        exclusive with ``area_fn``.
    min_edge_floor:
        Safety floor: skinny triangles whose shortest edge is already below
        this length are not split further.  This is the pragmatic guard
        against non-termination near small input angles (the airfoil
        trailing-edge cusps); Triangle uses concentric-shell splitting for
        the same purpose.
    max_steiner:
        Hard insertion budget; exceeded -> :class:`RefinementError`.
    """

    def __init__(
        self,
        tri: Triangulation,
        *,
        holes: Sequence[Tuple[float, float]] = (),
        quality_bound: Optional[float] = RUPPERT_BOUND,
        area_fn: Optional[AreaFn] = None,
        criterion: Optional[SizingCriterion] = None,
        min_edge_floor: float = 0.0,
        max_steiner: int = 2_000_000,
        lock_segments: bool = False,
    ) -> None:
        if area_fn is not None and criterion is not None:
            raise ValueError("pass either area_fn or criterion, not both")
        self.tri = tri
        self.quality_bound = quality_bound
        self.area_fn = area_fn
        self.criterion = (AreaCriterion(area_fn) if area_fn is not None
                          else criterion)
        self.min_edge_floor = float(min_edge_floor)
        self.max_steiner = int(max_steiner)
        self.steiner_count = 0
        # When True, constrained segments are never split: the decoupling
        # contract (Section II.E) — the graded borders were pre-sized so
        # refinement never *needs* to split them; any skipped split is
        # counted for diagnostics.
        self.lock_segments = bool(lock_segments)
        self.locked_skips = 0
        # Triangles that could not be improved (their fix was denied by
        # lock_segments / min_edge_floor): excluded from rescans so the
        # fixed-point loop terminates.
        self._unfixable: set = set()
        # interior[t]: True for triangles in the meshed region.
        mask = carve(tri, holes)
        self._interior: Dict[int, bool] = {
            t: bool(mask[t]) for t in tri.live_triangles()
        }
        self._holes = tuple(holes)

    # ------------------------------------------------------------------
    # Region bookkeeping
    # ------------------------------------------------------------------
    def _is_interior(self, t: int) -> bool:
        return self._interior.get(t, False)

    def _insert_tracked(self, x: float, y: float, *, interior_hint: int
                        ) -> int:
        """Insert a point and propagate the region label of its cavity.

        ``interior_hint`` is a triangle known to contain the point (the
        label source).  Cavities cannot cross constraints, so the label is
        uniform over the cavity and inherited by every new triangle.
        """
        label = self._is_interior(interior_hint)
        vid = self.tri.insert_point(x, y, hint=interior_hint)
        for t in self.tri.last_removed:
            self._interior.pop(t, None)
            self._unfixable.discard(t)
        for t in self.tri.last_created:
            self._interior[t] = label and not self.tri.is_ghost(t)
            self._unfixable.discard(t)
        self.steiner_count += 1
        if self.steiner_count > self.max_steiner:
            raise RefinementError(
                f"exceeded Steiner budget ({self.max_steiner}); "
                "sizing function or input geometry is inconsistent"
            )
        return vid

    def _insert_on_segment(self, u: int, v: int, x: float, y: float) -> int:
        """Split constrained segment (u, v) at (x, y) on the segment.

        The two sides of a constrained segment may carry different region
        labels (interior vs hole/exterior), and the insertion cavity spans
        both sides while the constraint is lifted — so new triangles must
        be relabelled.  Classification is by *connectivity*: each new
        triangle adopts the label of a neighbour reachable without
        crossing a constrained edge (a geometric side-of-line test would
        misclassify cavity triangles beyond the segment's endpoints).
        """
        from ..geometry.predicates import orient2d

        tri = self.tri
        loc = self._find_any_edge_triangle(u, v)
        if loc is None:
            raise TriangulationError(f"segment ({u},{v}) is not an edge")
        # Side labels of the segment before the split (valid within the
        # segment's slab): used to seed the connectivity propagation for
        # triangles adjacent to the new subsegments — necessary when the
        # cavity swallows every pre-existing triangle of a region.
        label_side = {}
        for t in tri.triangles_around_vertex(u):
            tv = tri.tri_v[t]
            if tv is None or v not in tv or tri.is_ghost(t):
                continue
            w = next(w for w in tv if w not in (u, v))
            if w == GHOST:
                continue
            side = orient2d(tri.pts[u], tri.pts[v], tri.pts[w])
            if side != 0:
                label_side[side] = self._is_interior(t)
        pu, pv = tri.pts[u], tri.pts[v]

        tri.unmark_constraint(u, v)
        vid = self._insert_tracked(x, y, interior_hint=loc)
        tri.mark_constraint(u, vid)
        tri.mark_constraint(vid, v)

        created = [t for t in tri.last_created if tri.tri_v[t] is not None]
        created_set = set(created)
        for t in created:
            if tri.is_ghost(t):
                self._interior[t] = False
        pending = []
        seeded: dict = {}
        for t in created:
            if tri.is_ghost(t):
                continue
            tv = tri.tri_v[t]
            # Adjacent to a new subsegment: side-of-line is valid here.
            if (u in tv or v in tv) and vid in tv:
                w = next((w for w in tv if w not in (u, v, vid)), None)
                if w is not None:
                    side = orient2d(pu, pv, tri.pts[w])
                    if side != 0 and side in label_side:
                        seeded[t] = label_side[side]
                        self._interior[t] = label_side[side]
                        continue
            pending.append(t)
        resolved: dict = dict(seeded)
        guard = 0
        while pending:
            guard += 1
            if guard > 4 * len(created) + 16:
                # Should be unreachable: the cavity boundary always
                # touches labelled pre-existing triangles or ghosts.
                for t in pending:
                    self._interior[t] = False
                break
            progress = False
            rest = []
            for t in pending:
                label = None
                for k in range(3):
                    e_u, e_v = tri._edge(t, k)
                    if e_u != GHOST and e_v != GHOST:
                        key = (e_u, e_v) if e_u < e_v else (e_v, e_u)
                        if key in tri.constraints:
                            continue  # labels do not cross constraints
                    nb = tri.tri_n[t][k]
                    if nb < 0:
                        continue
                    if tri.is_ghost(nb):
                        label = False  # open to the outside of the hull
                        break
                    if nb in resolved:
                        label = resolved[nb]
                        break
                    if nb not in created_set and nb in self._interior:
                        label = self._interior[nb]
                        break
                if label is None:
                    rest.append(t)
                else:
                    resolved[t] = label
                    self._interior[t] = label
                    progress = True
            pending = rest
            if not progress and pending:
                continue  # another pass: resolved set has grown
        return vid

    def _find_any_edge_triangle(self, u: int, v: int) -> Optional[int]:
        """Any live triangle holding edge {u, v}, preferring a real one.

        The two directed-edge probes cover both sides of the edge; only
        a hull edge can make one side ghost.
        """
        tri = self.tri
        ghost: Optional[int] = None
        for a, b in ((u, v), (v, u)):
            loc = find_directed_edge(tri, a, b)
            if loc is not None:
                if not tri.is_ghost(loc[0]):
                    return loc[0]
                if ghost is None:
                    ghost = loc[0]
        return ghost

    # ------------------------------------------------------------------
    # Encroachment
    # ------------------------------------------------------------------
    def _encroached_by(self, u: int, v: int, w: int) -> bool:
        """Vertex ``w`` strictly inside the diametral circle of (u, v)?"""
        pu, pv, pw = self.tri.pts[u], self.tri.pts[v], self.tri.pts[w]
        # Angle at w subtending uv > 90 deg  <=>  (u-w).(v-w) < 0.
        return ((pu[0] - pw[0]) * (pv[0] - pw[0])
                + (pu[1] - pw[1]) * (pv[1] - pw[1])) < 0.0

    def _encroached_by_point(self, u: int, v: int, p: Tuple[float, float]
                             ) -> bool:
        pu, pv = self.tri.pts[u], self.tri.pts[v]
        return ((pu[0] - p[0]) * (pv[0] - p[0])
                + (pu[1] - p[1]) * (pv[1] - p[1])) < 0.0

    def _segment_encroached(self, u: int, v: int) -> bool:
        """Check the apex vertices of the (up to two) adjacent triangles —
        sufficient in a CDT: any encroaching vertex implies the apexes
        encroach too (they are inside the diametral circle or the segment
        would not be Delaunay-adjacent to them)."""
        loc = self._find_any_edge_triangle(u, v)
        if loc is None:
            return False
        tri = self.tri
        for t in tri.triangles_around_vertex(u):
            tv = tri.tri_v[t]
            if v not in tv or tri.is_ghost(t):
                continue
            w = next(w for w in tv if w not in (u, v))
            if w != GHOST and self._encroached_by(u, v, w):
                return True
        return False

    # ------------------------------------------------------------------
    # Quality / size tests
    # ------------------------------------------------------------------
    def _triangle_bad(self, t: int) -> Optional[str]:
        """Return "quality"/"size" when triangle ``t`` needs refinement."""
        tri = self.tri
        tv = tri.tri_v[t]
        if tv is None or GHOST in tv or not self._is_interior(t):
            return None
        pa, pb, pc = (tri.pts[tv[0]], tri.pts[tv[1]], tri.pts[tv[2]])
        la = distance(pb, pc)
        lb = distance(pa, pc)
        lc = distance(pa, pb)
        lmin = min(la, lb, lc)
        area = 0.5 * abs(
            (pb[0] - pa[0]) * (pc[1] - pa[1])
            - (pb[1] - pa[1]) * (pc[0] - pa[0])
        )
        if exact_eq(area, 0.0):
            return None  # exactly degenerate slivers cannot be improved
        if self.criterion is not None:
            if self.criterion.oversized(pa, pb, pc, area):
                return "size"
        if self.quality_bound is not None:
            r = la * lb * lc / (4.0 * area)
            if r / lmin > self.quality_bound:
                if self.min_edge_floor and lmin <= self.min_edge_floor:
                    return None  # small-angle guard
                return "quality"
        return None

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def refine(self) -> None:
        """Run to completion (or raise :class:`RefinementError`)."""
        # Phase 0: split every encroached input segment.  The
        # min_edge_floor guard applies here too: without it, two segments
        # meeting at a small input angle ping-pong encroachment splits
        # down to floating-point scale (Ruppert's classic small-angle
        # cascade; Triangle handles it with concentric shells).
        seg_queue = deque(() if self.lock_segments else self.tri.constraints)
        while seg_queue:
            u, v = seg_queue.popleft()
            key = (u, v) if u < v else (v, u)
            if key not in self.tri.constraints:
                continue
            if self._segment_encroached(u, v) and self._split_allowed(u, v):
                mid = self._split_segment(u, v)
                seg_queue.append((u, mid))
                seg_queue.append((mid, v))

        # Phase 1: process bad triangles; re-scan until a fixed point.
        # A worklist of triangle ids; stale ids are skipped cheaply.
        work: deque = deque(
            t for t in self.tri.live_triangles() if self._triangle_bad(t)
        )
        idle_rescans = 0
        while True:
            while work:
                t = work.popleft()
                if self.tri.tri_v[t] is None:
                    continue
                reason = self._triangle_bad(t)
                if reason is None:
                    continue
                self._process_bad_triangle(t, work)
            # Re-scan to catch triangles invalidated out of the worklist.
            fresh = [t for t in self.tri.live_triangles()
                     if t not in self._unfixable and self._triangle_bad(t)]
            if not fresh:
                break
            idle_rescans += 1
            if idle_rescans > 10_000:
                raise RefinementError("refinement rescan did not converge")
            work.extend(fresh)

        sink = counters_current()
        if sink is not None:
            sink.absorb_kernel(self.tri)
            sink.incr("steiner_points", self.steiner_count)
            if self.locked_skips:
                sink.incr("locked_segment_skips", self.locked_skips)

    def _split_segment(self, u: int, v: int) -> int:
        pu, pv = self.tri.pts[u], self.tri.pts[v]
        mx, my = 0.5 * (pu[0] + pv[0]), 0.5 * (pu[1] + pv[1])
        return self._insert_on_segment(u, v, mx, my)

    def _process_bad_triangle(self, t: int, work: deque) -> None:
        tri = self.tri
        tv = tri.tri_v[t]
        pa, pb, pc = (tri.pts[tv[0]], tri.pts[tv[1]], tri.pts[tv[2]])
        try:
            cc = circumcenter(pa, pb, pc)
        except ValueError:
            self._unfixable.add(t)
            return
        if not (np.isfinite(cc[0]) and np.isfinite(cc[1])):
            self._unfixable.add(t)
            return

        # Walk from the triangle toward the circumcenter; a constrained
        # edge crossed on the way means cc is invisible -> split it.
        blocker = self._visibility_blocker(t, cc)
        if blocker is not None:
            u, v = blocker
            if self._split_allowed(u, v):
                mid = self._split_segment(u, v)
                self._requeue_around_vertex(mid, work)
            else:
                self._unfixable.add(t)
            return

        dest = tri.locate(cc, hint=t)
        if tri.is_ghost(dest) or not self._is_interior(dest):
            # Outside the region without crossing a constraint (numeric
            # corner) — nothing safe to insert.
            self._unfixable.add(t)
            return
        # Reject when cc would encroach a constrained cavity edge.
        encroached = self._encroached_segments_near(dest, cc)
        if encroached:
            did_split = False
            for u, v in encroached:
                if self._split_allowed(u, v):
                    mid = self._split_segment(u, v)
                    self._requeue_around_vertex(mid, work)
                    did_split = True
            if not did_split:
                self._unfixable.add(t)
            return
        dup = tri.find_vertex_at(cc, dest)
        if dup is not None:
            self._unfixable.add(t)
            return  # circumcenter collides with an existing vertex
        vid = self._insert_tracked(cc[0], cc[1], interior_hint=dest)
        self._requeue_around_vertex(vid, work)

    def _split_allowed(self, u: int, v: int) -> bool:
        if self.lock_segments:
            self.locked_skips += 1
            return False
        if not self.min_edge_floor:
            return True
        return distance(self.tri.pts[u], self.tri.pts[v]) > 2.0 * self.min_edge_floor

    def _requeue_around_vertex(self, vid: int, work: deque) -> None:
        for t in self.tri.triangles_around_vertex(vid):
            if not self.tri.is_ghost(t):
                work.append(t)

    def _visibility_blocker(self, t: int, cc: Tuple[float, float]
                            ) -> Optional[Tuple[int, int]]:
        """First constrained edge crossed walking from ``t``'s centroid to
        ``cc``, or ``None`` when the circumcenter is visible."""
        from ..geometry.predicates import orient2d
        from ..geometry.primitives import segments_intersect

        tri = self.tri
        tv = tri.tri_v[t]
        pa, pb, pc = (tri.pts[tv[0]], tri.pts[tv[1]], tri.pts[tv[2]])
        start = ((pa[0] + pb[0] + pc[0]) / 3.0, (pa[1] + pb[1] + pc[1]) / 3.0)
        cur = t
        guard = 0
        visited = {t}
        while True:
            guard += 1
            if guard > 4 * (tri.n_live_triangles + 8):
                return None
            tv = tri.tri_v[cur]
            if tv is None or GHOST in tv:
                return None
            # Does cc lie in cur?
            inside = all(
                orient2d(tri.pts[tv[(k + 1) % 3]],
                         tri.pts[tv[(k + 2) % 3]], cc) >= 0
                for k in range(3)
            )
            if inside:
                return None
            moved = False
            for k in range(3):
                u, v = tri._edge(cur, k)
                if u == GHOST or v == GHOST:
                    continue
                pu, pv = tri.pts[u], tri.pts[v]
                if orient2d(pu, pv, cc) < 0 and segments_intersect(
                    start, cc, pu, pv
                ):
                    key = (u, v) if u < v else (v, u)
                    if key in tri.constraints:
                        return (u, v)
                    nxt = tri.tri_n[cur][k]
                    if nxt < 0 or nxt in visited:
                        continue
                    visited.add(nxt)
                    cur = nxt
                    moved = True
                    break
            if not moved:
                return None

    def _encroached_segments_near(self, dest: int, cc: Tuple[float, float]
                                  ) -> List[Tuple[int, int]]:
        """Constrained edges of the would-be cavity that ``cc`` encroaches."""
        tri = self.tri
        out: List[Tuple[int, int]] = []
        # Breadth-limited sweep over the cavity that cc's insertion would
        # carve (constraint-respecting), checking its constrained border.
        cavity = {dest}
        stack = [dest]
        while stack:
            t = stack.pop()
            for k in range(3):
                nb = tri.tri_n[t][k]
                u, v = tri._edge(t, k)
                is_constr = False
                if u != GHOST and v != GHOST:
                    key = (u, v) if u < v else (v, u)
                    is_constr = key in tri.constraints
                if is_constr:
                    if self._encroached_by_point(u, v, cc):
                        out.append((u, v))
                    continue
                if nb < 0 or nb in cavity:
                    continue
                if tri._in_disk(nb, cc):
                    cavity.add(nb)
                    stack.append(nb)
        return out

    # ------------------------------------------------------------------
    # Output
    # ------------------------------------------------------------------
    def to_mesh(self) -> TriMesh:
        arr = self.tri._arr
        mask = np.zeros(arr.n_tris, dtype=bool)
        for t, lab in self._interior.items():
            if lab and not arr.is_dead(t):
                mask[t] = True
        mesh = self.tri.to_mesh(keep_mask=mask)
        sink = counters_current()
        if sink is not None:
            sink.absorb_finalize(self.tri)
        return mesh


def refine_pslg(
    points: np.ndarray,
    segments: np.ndarray,
    *,
    holes: Sequence[Tuple[float, float]] = (),
    quality_bound: Optional[float] = RUPPERT_BOUND,
    max_area: Optional[float] = None,
    area_fn: Optional[AreaFn] = None,
    criterion: Optional[SizingCriterion] = None,
    min_edge_floor: float = 0.0,
    max_steiner: int = 2_000_000,
    assume_sorted: bool = False,
) -> TriMesh:
    """One-call PSLG -> refined quality mesh (the Triangle workflow).

    ``max_area`` is a uniform bound; ``area_fn`` a spatially varying one
    (both may be given — the effective bound is the minimum).  A custom
    ``criterion`` (e.g. :class:`MetricCriterion`) replaces both.
    """
    if max_area is not None and max_area <= 0:
        raise ValueError("max_area must be positive")
    if criterion is not None and (max_area is not None or area_fn is not None):
        raise ValueError("pass either criterion or area bounds, not both")

    bound_fn: Optional[AreaFn]
    if area_fn is None and max_area is None:
        bound_fn = None
    elif area_fn is None:
        bound_fn = lambda x, y: max_area  # noqa: E731
    elif max_area is None:
        bound_fn = area_fn
    else:
        bound_fn = lambda x, y: min(max_area, area_fn(x, y))  # noqa: E731

    tri = triangulate_pslg(points, segments, assume_sorted=assume_sorted)
    refiner = Refiner(
        tri,
        holes=holes,
        quality_bound=quality_bound,
        area_fn=bound_fn,
        criterion=criterion,
        min_edge_floor=min_edge_floor,
        max_steiner=max_steiner,
    )
    refiner.refine()
    return refiner.to_mesh()
