"""``python -m repro`` dispatches to the push-button mesher CLI."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
