"""repro — parallel 2D unstructured anisotropic Delaunay mesh generation.

A from-scratch reproduction of Pardue & Chernikov, "Parallel
Two-Dimensional Unstructured Anisotropic Delaunay Mesh Generation of
Complex Domains for Aerospace Applications" (ICPP 2016).

Quickstart
----------
>>> from repro import PSLG, naca0012, MeshConfig, generate_mesh
>>> pslg = PSLG.from_loops([naca0012(101)])
>>> result = generate_mesh(pslg, MeshConfig())
>>> result.mesh.n_triangles > 0
True

Package layout (see DESIGN.md for the full inventory):

- :mod:`repro.geometry` — predicates, primitives, PSLG, airfoils;
- :mod:`repro.spatial`  — alternating digital tree, bucket grid;
- :mod:`repro.delaunay` — the Triangle-substitute kernel: incremental
  Bowyer–Watson, constrained edges, Ruppert refinement;
- :mod:`repro.sizing`   — sizing fields and BL growth functions;
- :mod:`repro.core`     — the paper's algorithms: boundary layers,
  projection-based decomposition, graded decoupling, push-button pipeline;
- :mod:`repro.runtime`  — in-process MPI subset, RMA window, work
  stealing, discrete-event cluster simulator;
- :mod:`repro.solver`   — P1 FEM + potential flow (the FUN3D stand-in);
- :mod:`repro.io`       — Triangle-format and NPZ mesh I/O.
"""

from .core.bl_pipeline import (
    BoundaryLayerConfig,
    BoundaryLayerResult,
    generate_boundary_layer,
)
from .analysis import mesh_report
from .core.pipeline import MeshConfig, MeshResult, generate_mesh
from .delaunay import TriMesh, adapt_mesh, delaunay_mesh, refine_pslg, \
    validate_mesh
from .geometry import PSLG, naca4, naca0012, three_element_airfoil
from .metric import MetricField
from .sizing import GeometricGrowth, GradedDistanceSizing, UniformSizing

__version__ = "1.0.0"

__all__ = [
    "BoundaryLayerConfig",
    "BoundaryLayerResult",
    "GeometricGrowth",
    "GradedDistanceSizing",
    "MeshConfig",
    "MeshResult",
    "MetricField",
    "PSLG",
    "TriMesh",
    "UniformSizing",
    "adapt_mesh",
    "delaunay_mesh",
    "generate_boundary_layer",
    "generate_mesh",
    "mesh_report",
    "naca4",
    "naca0012",
    "refine_pslg",
    "three_element_airfoil",
    "validate_mesh",
    "__version__",
]
