"""Airfoil geometry generators.

The paper evaluates on the NACA 0012 (Fig. 2) and the 30p30n three-element
high-lift configuration (Figs. 3-5, 8, 13-16).  The 30p30n coordinate set
is not redistributable, so this module synthesises an equivalent
three-element configuration from NACA sections with deflection, gap and
overlap transforms, plus the geometric features that drive every special
code path in the boundary-layer generator:

* sharp trailing-edge *cusps*  -> fan-of-rays insertion (Figs. 3-4, 13b);
* *blunt* trailing edges       -> two slope discontinuities (Fig. 13e);
* concave *cove* cut-outs      -> ray self-intersections (Fig. 13b-c);
* closely spaced elements      -> multi-element ray intersections (Fig. 13d).

All generators return counter-clockwise coordinate arrays (trailing edge ->
upper surface -> leading edge -> lower surface) without a duplicated
closing point.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .pslg import PSLG

__all__ = [
    "add_cove",
    "blunt_trailing_edge",
    "circle",
    "cosine_spacing",
    "farfield_box",
    "flat_plate",
    "joukowski",
    "naca4",
    "naca5",
    "naca0012",
    "three_element_airfoil",
    "transform_coords",
]


def cosine_spacing(n: int) -> np.ndarray:
    """``n`` chordwise stations in [0, 1] clustered at both ends.

    Cosine clustering concentrates surface vertices at the leading and
    trailing edges where curvature (and hence required resolution) is
    highest - the standard aerospace surface distribution.
    """
    if n < 2:
        raise ValueError("need at least 2 stations")
    beta = np.linspace(0.0, math.pi, n)
    return 0.5 * (1.0 - np.cos(beta))


def _naca4_thickness(x: np.ndarray, t: float, *, closed_te: bool) -> np.ndarray:
    """NACA 4-digit half-thickness distribution.

    With ``closed_te`` the final coefficient is -0.1036 so the thickness
    vanishes exactly at x=1 (a sharp cusp); the historical -0.1015 leaves a
    small open trailing edge.
    """
    a4 = -0.1036 if closed_te else -0.1015
    return (t / 0.2) * (
        0.2969 * np.sqrt(x)
        - 0.1260 * x
        - 0.3516 * x**2
        + 0.2843 * x**3
        + a4 * x**4
    )


def _naca4_camber(x: np.ndarray, m: float, p: float) -> Tuple[np.ndarray, np.ndarray]:
    """Camber line ``yc`` and slope ``dyc/dx`` for a 4-digit section."""
    yc = np.zeros_like(x)
    dyc = np.zeros_like(x)
    if m > 0.0 and 0.0 < p < 1.0:
        fore = x < p
        aft = ~fore
        yc[fore] = m / p**2 * (2 * p * x[fore] - x[fore] ** 2)
        dyc[fore] = 2 * m / p**2 * (p - x[fore])
        yc[aft] = m / (1 - p) ** 2 * ((1 - 2 * p) + 2 * p * x[aft] - x[aft] ** 2)
        dyc[aft] = 2 * m / (1 - p) ** 2 * (p - x[aft])
    return yc, dyc


def naca4(code: str, n_points: int = 101, *, closed_te: bool = True) -> np.ndarray:
    """Generate a NACA 4-digit airfoil as a CCW ``(m, 2)`` coordinate array.

    ``code`` is the 4-digit designation, e.g. ``"0012"`` or ``"4412"``.
    ``n_points`` is the number of chordwise stations per surface; the
    result has ``2 * n_points - 2`` vertices (shared leading edge, single
    trailing-edge vertex when ``closed_te``).
    """
    if len(code) != 4 or not code.isdigit():
        raise ValueError(f"bad NACA 4-digit code: {code!r}")
    m = int(code[0]) / 100.0
    p = int(code[1]) / 10.0
    t = int(code[2:]) / 100.0
    if t <= 0.0:
        raise ValueError("zero-thickness airfoil is degenerate")

    x = cosine_spacing(n_points)
    yt = _naca4_thickness(x, t, closed_te=closed_te)
    yc, dyc = _naca4_camber(x, m, p)
    theta = np.arctan(dyc)

    xu = x - yt * np.sin(theta)
    yu = yc + yt * np.cos(theta)
    xl = x + yt * np.sin(theta)
    yl = yc - yt * np.cos(theta)

    # TE -> upper -> LE -> lower -> (TE implicit).  Skip the duplicated LE
    # point and, for a closed TE, the duplicated final lower-surface point.
    upper = np.column_stack([xu[::-1], yu[::-1]])  # TE .. LE
    lower = np.column_stack([xl[1:], yl[1:]])      # LE+1 .. TE
    coords = np.vstack([upper, lower])
    if closed_te:
        coords = coords[:-1]  # drop duplicated TE vertex
    return _dedupe_consecutive(coords)


def _dedupe_consecutive(coords: np.ndarray, tol: float = 1e-12) -> np.ndarray:
    """Remove consecutive (and wrap-around) duplicate vertices."""
    keep = [0]
    for i in range(1, len(coords)):
        if np.linalg.norm(coords[i] - coords[keep[-1]]) > tol:
            keep.append(i)
    if len(keep) > 1 and np.linalg.norm(coords[keep[-1]] - coords[keep[0]]) <= tol:
        keep.pop()
    return coords[keep]


def transform_coords(
    coords: np.ndarray,
    *,
    scale: float = 1.0,
    rotate_deg: float = 0.0,
    translate: Tuple[float, float] = (0.0, 0.0),
    pivot: Tuple[float, float] = (0.0, 0.0),
) -> np.ndarray:
    """Scale about the origin, rotate about ``pivot``, then translate.

    Positive ``rotate_deg`` deflects the section nose-up (counter-clockwise);
    high-lift devices use negative (nose-down) deflections.
    """
    out = np.asarray(coords, dtype=np.float64) * scale
    th = math.radians(rotate_deg)
    c, s = math.cos(th), math.sin(th)
    px, py = pivot
    x = out[:, 0] - px
    y = out[:, 1] - py
    out = np.column_stack([px + c * x - s * y, py + s * x + c * y])
    out[:, 0] += translate[0]
    out[:, 1] += translate[1]
    return out


def add_cove(
    coords: np.ndarray,
    *,
    x_start: float = 0.55,
    x_end: float = 0.97,
    depth: float = 0.6,
) -> np.ndarray:
    """Carve a concave cove into the lower aft surface of an airfoil.

    Real high-lift slats and mains have concave coves on their lower
    trailing regions (where the retracted downstream element nests).  The
    cove is what produces ray *self*-intersections in the boundary-layer
    generator (paper Fig. 13b-c).  We displace the lower-surface vertices
    with chordwise stations in ``[x_start, x_end]`` toward the camber line
    by a smooth bump of relative ``depth`` in (0, 1].
    """
    if not 0.0 < depth <= 1.0:
        raise ValueError("depth must be in (0, 1]")
    coords = np.asarray(coords, dtype=np.float64).copy()
    n = len(coords)
    le_idx = int(np.argmin(coords[:, 0]))
    # Lower surface follows the leading edge in CCW order.
    lower = np.arange(le_idx + 1, n)
    xs = coords[lower, 0]
    span = x_end - x_start
    inside = (xs > x_start) & (xs < x_end)
    u = (xs[inside] - x_start) / span
    bump = np.sin(math.pi * u) ** 2  # 0 at both ends, 1 mid-cove
    sel = lower[inside]
    # Pull lower-surface points up toward y=0 (the chord line); since the
    # lower surface has y<0 this creates a concavity with two concave
    # corners at the cove lips.
    coords[sel, 1] *= 1.0 - depth * bump
    return coords


def blunt_trailing_edge(coords: np.ndarray, x_cut: float = 0.98) -> np.ndarray:
    """Truncate the trailing edge at ``x_cut`` to create a blunt base.

    The vertical base introduces two slope discontinuities (paper Fig. 13e)
    that each receive a fan of rays.
    """
    coords = np.asarray(coords, dtype=np.float64)
    keep = coords[:, 0] <= x_cut
    if keep.sum() < 3:
        raise ValueError("x_cut removes nearly the whole section")
    le_idx = int(np.argmin(coords[:, 0]))
    upper = coords[:le_idx + 1][keep[:le_idx + 1]]
    lower = coords[le_idx + 1:][keep[le_idx + 1:]]

    def _base_point(surface: np.ndarray, last_inside: np.ndarray) -> np.ndarray:
        """Interpolate the surface crossing of x = x_cut."""
        return last_inside

    # Interpolate exact base corners on each surface at x == x_cut.
    def _corner(p_in: np.ndarray, p_out: np.ndarray) -> np.ndarray:
        tpar = (x_cut - p_in[0]) / (p_out[0] - p_in[0])
        return p_in + tpar * (p_out - p_in)

    # upper runs TE->LE, so its first kept point follows a removed point.
    first_keep_u = int(np.flatnonzero(keep[:le_idx + 1])[0])
    if first_keep_u > 0:
        corner_u = _corner(coords[first_keep_u], coords[first_keep_u - 1])
        upper = np.vstack([corner_u, upper])
    lower_global = np.arange(le_idx + 1, len(coords))
    kept_lower = lower_global[keep[le_idx + 1:]]
    if len(kept_lower) and kept_lower[-1] + 1 < len(coords):
        corner_l = _corner(coords[kept_lower[-1]], coords[kept_lower[-1] + 1])
        lower = np.vstack([lower, corner_l])
    out = np.vstack([upper, lower])
    return _dedupe_consecutive(out)


def naca0012(n_points: int = 101, *, closed_te: bool = True) -> np.ndarray:
    """The NACA 0012 of paper Fig. 2."""
    return naca4("0012", n_points, closed_te=closed_te)


def three_element_airfoil(
    n_points: int = 101,
    *,
    slat_deflection: float = -30.0,
    flap_deflection: float = -30.0,
    with_coves: bool = True,
    blunt_flap_te: bool = True,
) -> PSLG:
    """Synthetic three-element high-lift configuration (30p30n stand-in).

    Leading-edge slat (25% chord, deflected ``slat_deflection`` degrees),
    main element with cove, and a slotted trailing-edge flap (30% chord).
    The default -30/-30 deflections mirror the 30p30n designation (30
    degree slat, 30 degree flap).  Gaps/overlaps are chosen so neighbouring
    boundary layers interact (multi-element intersections, Fig. 13d) while
    the loops themselves stay disjoint.
    """
    # Main element: cambered section with a lower cove where the flap nests.
    main = naca4("4412", n_points, closed_te=True)
    if with_coves:
        main = add_cove(main, x_start=0.72, x_end=0.98, depth=0.55)
    main = transform_coords(main, scale=0.83, translate=(0.05, 0.0))

    # Slat: thin section ahead of and below the main leading edge.
    slat = naca4("4410", max(2 * n_points // 3, 31), closed_te=True)
    if with_coves:
        slat = add_cove(slat, x_start=0.45, x_end=0.95, depth=0.65)
    slat = transform_coords(
        slat, scale=0.25, rotate_deg=slat_deflection, pivot=(0.0, 0.0),
        translate=(-0.155, -0.028),
    )

    # Flap: deployed downward-aft of the main trailing edge with a slot gap.
    flap = naca4("4408", max(2 * n_points // 3, 31), closed_te=not blunt_flap_te)
    if blunt_flap_te:
        flap = blunt_trailing_edge(flap, x_cut=0.97)
    flap = transform_coords(
        flap, scale=0.30, rotate_deg=flap_deflection, pivot=(0.0, 0.0),
        translate=(0.862, -0.0385),
    )

    return PSLG.from_loops(
        [slat, main, flap],
        names=["slat", "main", "flap"],
        is_body=[True, True, True],
    )


def farfield_box(
    pslg: PSLG,
    *,
    chords: float = 40.0,
    n_per_side: int = 8,
) -> np.ndarray:
    """Square far-field border ``chords`` chord lengths from the geometry.

    Returns a CCW ``(4 * n_per_side, 2)`` coordinate loop centred on the
    body bounding box.  The paper (Section II.E) uses 30-50 chords.
    """
    if chords <= 0:
        raise ValueError("chords must be positive")
    box = pslg.bbox(bodies_only=True)
    c = pslg.chord_length()
    cx, cy = box.center
    half = chords * c
    xs = np.linspace(-half, half, n_per_side + 1)[:-1]
    bottom = np.column_stack([cx + xs, np.full(n_per_side, cy - half)])
    right = np.column_stack([np.full(n_per_side, cx + half), cy + xs])
    top = np.column_stack([cx - xs, np.full(n_per_side, cy + half)])
    left = np.column_stack([np.full(n_per_side, cx - half), cy - xs])
    return np.vstack([bottom, right, top, left])


def circle(n_points: int = 64, *, radius: float = 0.5,
           center: Tuple[float, float] = (0.5, 0.0)) -> np.ndarray:
    """A circle (cylinder section) — the classic bluff-body test case."""
    if n_points < 3 or radius <= 0:
        raise ValueError("need >= 3 points and positive radius")
    th = np.linspace(0.0, 2.0 * math.pi, n_points, endpoint=False)
    return np.column_stack([center[0] + radius * np.cos(th),
                            center[1] + radius * np.sin(th)])


def flat_plate(n_points: int = 51, *, thickness: float = 0.004,
               blunt: bool = True) -> np.ndarray:
    """A thin flat plate of unit chord (the canonical BL validation body).

    ``blunt=True`` closes both ends with vertical bases (four slope
    discontinuities); otherwise the ends are sharp wedges.
    """
    if n_points < 3 or thickness <= 0:
        raise ValueError("bad plate parameters")
    t = thickness / 2.0
    xs = np.linspace(1.0, 0.0, n_points)
    upper = np.column_stack([xs, np.full_like(xs, t)])
    lower = np.column_stack([xs[::-1], np.full_like(xs, -t)])
    if blunt:
        coords = np.vstack([upper, lower])
    else:
        nose = np.array([(-0.01, 0.0)])
        tail = np.array([(1.01, 0.0)])
        coords = np.vstack([tail, upper, nose, lower])
    return _dedupe_consecutive(coords)


def joukowski(n_points: int = 101, *, thickness: float = 0.1,
              camber: float = 0.03) -> np.ndarray:
    """Joukowski airfoil via the conformal map z = w + 1/w.

    The circle |w - w0| = r through w = +1 maps to an airfoil with a
    perfect cusp at the trailing edge — the sharpest TE any smooth
    geometry produces, a stress test for the cusp-fan machinery.
    ``thickness`` shifts the circle centre in -x (thickness parameter),
    ``camber`` in +y.  The result is normalised to unit chord with the
    leading edge at x = 0.
    """
    if n_points < 8:
        raise ValueError("need >= 8 points")
    if thickness <= 0:
        raise ValueError("thickness must be positive")
    w0 = complex(-thickness, camber)
    r = abs(1.0 - w0)
    th = np.linspace(0.0, 2.0 * math.pi, n_points, endpoint=False)
    w = w0 + r * np.exp(1j * th)
    z = w + 1.0 / w
    coords = np.column_stack([z.real, z.imag])
    # Normalise to unit chord, LE at origin, TE at (1, y_te).
    xmin = coords[:, 0].min()
    xmax = coords[:, 0].max()
    coords[:, 0] = (coords[:, 0] - xmin) / (xmax - xmin)
    coords[:, 1] = coords[:, 1] / (xmax - xmin)
    return _dedupe_consecutive(coords)


def naca5(code: str, n_points: int = 101, *, closed_te: bool = True
          ) -> np.ndarray:
    """NACA 5-digit sections (the 230xx family and relatives).

    The camber line follows the standard 5-digit formulation with
    tabulated (m, k1) for the common camber designations; thickness uses
    the 4-digit distribution.
    """
    if len(code) != 5 or not code.isdigit():
        raise ValueError(f"bad NACA 5-digit code: {code!r}")
    t = int(code[3:]) / 100.0
    if t <= 0:
        raise ValueError("zero-thickness airfoil is degenerate")
    designation = code[:3]
    table = {
        "210": (0.0580, 361.400),
        "220": (0.1260, 51.640),
        "230": (0.2025, 15.957),
        "240": (0.2900, 6.643),
        "250": (0.3910, 3.230),
    }
    if designation not in table:
        raise ValueError(f"unsupported 5-digit camber {designation!r} "
                         f"(supported: {sorted(table)})")
    m, k1 = table[designation]

    x = cosine_spacing(n_points)
    yt = _naca4_thickness(x, t, closed_te=closed_te)
    yc = np.where(
        x < m,
        (k1 / 6.0) * (x**3 - 3 * m * x**2 + m * m * (3 - m) * x),
        (k1 * m**3 / 6.0) * (1 - x),
    )
    dyc = np.where(
        x < m,
        (k1 / 6.0) * (3 * x**2 - 6 * m * x + m * m * (3 - m)),
        -(k1 * m**3 / 6.0),
    )
    theta = np.arctan(dyc)
    xu = x - yt * np.sin(theta)
    yu = yc + yt * np.cos(theta)
    xl = x + yt * np.sin(theta)
    yl = yc - yt * np.cos(theta)
    upper = np.column_stack([xu[::-1], yu[::-1]])
    lower = np.column_stack([xl[1:], yl[1:]])
    coords = np.vstack([upper, lower])
    if closed_te:
        coords = coords[:-1]
    return _dedupe_consecutive(coords)
