"""Axis-aligned bounding boxes and segment extent boxes.

The boundary-layer intersection machinery (paper Section II.B) prunes
candidate rays hierarchically: first against the AABB of a whole airfoil
element's boundary layer, then through the alternating digital tree over
the 4D projections of per-segment extent boxes.  This module provides the
box type shared by those stages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Tuple

import numpy as np

__all__ = ["AABB", "segment_extent_box", "boxes_from_segments"]


@dataclass(frozen=True)
class AABB:
    """Closed axis-aligned box ``[xmin, xmax] x [ymin, ymax]``."""

    xmin: float
    ymin: float
    xmax: float
    ymax: float

    def __post_init__(self) -> None:
        if self.xmin > self.xmax or self.ymin > self.ymax:
            raise ValueError(f"inverted AABB: {self}")

    @classmethod
    def of_points(cls, pts: Iterable[Tuple[float, float]]) -> "AABB":
        arr = np.asarray(list(pts) if not isinstance(pts, np.ndarray) else pts,
                         dtype=np.float64)
        if arr.size == 0:
            raise ValueError("AABB of empty point set")
        return cls(
            float(arr[:, 0].min()), float(arr[:, 1].min()),
            float(arr[:, 0].max()), float(arr[:, 1].max()),
        )

    @property
    def width(self) -> float:
        return self.xmax - self.xmin

    @property
    def height(self) -> float:
        return self.ymax - self.ymin

    @property
    def center(self) -> Tuple[float, float]:
        return (0.5 * (self.xmin + self.xmax), 0.5 * (self.ymin + self.ymax))

    def contains_point(self, p) -> bool:
        return self.xmin <= p[0] <= self.xmax and self.ymin <= p[1] <= self.ymax

    def contains_box(self, other: "AABB") -> bool:
        return (
            self.xmin <= other.xmin and other.xmax <= self.xmax
            and self.ymin <= other.ymin and other.ymax <= self.ymax
        )

    def overlaps(self, other: "AABB") -> bool:
        """Closed-interval overlap test (boxes touching at an edge overlap)."""
        return not (
            other.xmin > self.xmax or other.xmax < self.xmin
            or other.ymin > self.ymax or other.ymax < self.ymin
        )

    def expanded(self, margin: float) -> "AABB":
        """Box grown by ``margin`` on every side."""
        return AABB(
            self.xmin - margin, self.ymin - margin,
            self.xmax + margin, self.ymax + margin,
        )

    def union(self, other: "AABB") -> "AABB":
        return AABB(
            min(self.xmin, other.xmin), min(self.ymin, other.ymin),
            max(self.xmax, other.xmax), max(self.ymax, other.ymax),
        )

    def as_4d_point(self) -> Tuple[float, float, float, float]:
        """Project this extent box to the 4D point ``(xmin, ymin, xmax, ymax)``.

        This is the projection used by the alternating digital tree (paper
        Section II.B, after Bonet & Peraire): a 2D box becomes a point in 4D,
        and box-overlap queries become 4D axis-aligned range queries.
        """
        return (self.xmin, self.ymin, self.xmax, self.ymax)

    def corners(self) -> Iterator[Tuple[float, float]]:
        yield (self.xmin, self.ymin)
        yield (self.xmax, self.ymin)
        yield (self.xmax, self.ymax)
        yield (self.xmin, self.ymax)


def segment_extent_box(a, b) -> AABB:
    """Extent box of the segment ``ab``."""
    return AABB(
        min(a[0], b[0]), min(a[1], b[1]),
        max(a[0], b[0]), max(a[1], b[1]),
    )


def boxes_from_segments(segments: np.ndarray) -> np.ndarray:
    """Vectorised extent boxes for an ``(n, 2, 2)`` array of segments.

    Returns an ``(n, 4)`` array of ``(xmin, ymin, xmax, ymax)`` rows — the
    4D points fed to the alternating digital tree in bulk.
    """
    segments = np.asarray(segments, dtype=np.float64)
    if segments.ndim != 3 or segments.shape[1:] != (2, 2):
        raise ValueError("expected segments of shape (n, 2, 2)")
    lo = segments.min(axis=1)
    hi = segments.max(axis=1)
    return np.concatenate([lo, hi], axis=1)
