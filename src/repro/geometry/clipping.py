"""Cohen–Sutherland line clipping against axis-aligned boxes.

The paper uses "a modified version of the Cohen–Sutherland algorithm for
polygon clipping" as the first, cheapest pruning stage for multi-element
intersection checks: a candidate ray is kept only if it intersects the
axis-aligned bounding box of another element's boundary layer (Section
II.B).  We implement the classic 4-bit outcode scheme:

* :func:`outcode` — classify a point against the nine regions around a box;
* :func:`segment_intersects_box` — the *modified* use: a pure accept/reject
  test that never computes the clipped coordinates unless forced to;
* :func:`clip_segment` — the full clipper, returning the portion of a
  segment inside the box (used by tests and by the ray truncation path).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .aabb import AABB

__all__ = [
    "INSIDE", "LEFT", "RIGHT", "BOTTOM", "TOP",
    "outcode", "segment_intersects_box", "clip_segment",
    "segments_intersect_box_batch",
]

INSIDE = 0b0000
LEFT = 0b0001
RIGHT = 0b0010
BOTTOM = 0b0100
TOP = 0b1000


def outcode(p, box: AABB) -> int:
    """Cohen–Sutherland 4-bit region code of point ``p`` w.r.t. ``box``."""
    code = INSIDE
    if p[0] < box.xmin:
        code |= LEFT
    elif p[0] > box.xmax:
        code |= RIGHT
    if p[1] < box.ymin:
        code |= BOTTOM
    elif p[1] > box.ymax:
        code |= TOP
    return code


def segment_intersects_box(a, b, box: AABB) -> bool:
    """True if segment ``ab`` has any point inside (or on) ``box``.

    Implements the iterative Cohen–Sutherland accept/reject loop.  Trivial
    accept: either endpoint inside.  Trivial reject: both endpoints share an
    outside half-plane.  Otherwise the segment is clipped against one box
    edge at a time until one of the trivial cases fires.
    """
    x0, y0 = float(a[0]), float(a[1])
    x1, y1 = float(b[0]), float(b[1])
    code0 = outcode((x0, y0), box)
    code1 = outcode((x1, y1), box)

    while True:
        if code0 == INSIDE or code1 == INSIDE:
            return True
        if code0 & code1:
            return False
        # Both endpoints outside, in different regions: clip the endpoint
        # with the larger code against the corresponding box edge.
        code_out = max(code0, code1)
        # Divide before multiplying: the parameter (edge - c0) / (c1 - c0)
        # is well-scaled even for subnormal coordinates, whereas the
        # product-first form underflows to +-0.0 for segments grazing a
        # corner within ~1e-160 and silently lands the clipped point on
        # the wrong side of the box edge.
        if code_out & TOP:
            x = x0 + (x1 - x0) * ((box.ymax - y0) / (y1 - y0))
            y = box.ymax
        elif code_out & BOTTOM:
            x = x0 + (x1 - x0) * ((box.ymin - y0) / (y1 - y0))
            y = box.ymin
        elif code_out & RIGHT:
            y = y0 + (y1 - y0) * ((box.xmax - x0) / (x1 - x0))
            x = box.xmax
        else:  # LEFT
            y = y0 + (y1 - y0) * ((box.xmin - x0) / (x1 - x0))
            x = box.xmin

        if code_out == code0:
            x0, y0 = x, y
            code0 = outcode((x0, y0), box)
        else:
            x1, y1 = x, y
            code1 = outcode((x1, y1), box)


def clip_segment(
    a, b, box: AABB
) -> Optional[Tuple[Tuple[float, float], Tuple[float, float]]]:
    """Clip segment ``ab`` to ``box``; returns the inside portion or ``None``."""
    x0, y0 = float(a[0]), float(a[1])
    x1, y1 = float(b[0]), float(b[1])
    code0 = outcode((x0, y0), box)
    code1 = outcode((x1, y1), box)

    while True:
        if code0 == INSIDE and code1 == INSIDE:
            return ((x0, y0), (x1, y1))
        if code0 & code1:
            return None
        # Same selection rule as segment_intersects_box (INSIDE == 0, so max
        # always names an outside endpoint): for corner-grazing segments
        # within rounding distance the accept/reject answer depends on which
        # endpoint is clipped first, so both functions must clip in the same
        # order to stay bit-for-bit consistent.
        code_out = max(code0, code1)
        # Divide-first for subnormal robustness (see segment_intersects_box).
        if code_out & TOP:
            x = x0 + (x1 - x0) * ((box.ymax - y0) / (y1 - y0))
            y = box.ymax
        elif code_out & BOTTOM:
            x = x0 + (x1 - x0) * ((box.ymin - y0) / (y1 - y0))
            y = box.ymin
        elif code_out & RIGHT:
            y = y0 + (y1 - y0) * ((box.xmax - x0) / (x1 - x0))
            x = box.xmax
        else:
            y = y0 + (y1 - y0) * ((box.xmin - x0) / (x1 - x0))
            x = box.xmin

        if code_out == code0:
            x0, y0 = x, y
            code0 = outcode((x0, y0), box)
        else:
            x1, y1 = x, y
            code1 = outcode((x1, y1), box)


def segments_intersect_box_batch(segments: np.ndarray, box: AABB) -> np.ndarray:
    """Vectorised box-overlap prefilter for an ``(n, 2, 2)`` segment array.

    Returns a boolean mask.  This is a *conservative* vectorised version
    used to cut the candidate list before the per-segment exact
    Cohen–Sutherland loop: it combines the trivial-reject outcode test with
    a separating-line test against the two box diagonals, which together
    are exact for segments vs. axis-aligned boxes (a segment misses a box
    iff it is trivially rejected by outcodes or the box lies strictly on
    one side of the segment's supporting line).
    """
    segments = np.asarray(segments, dtype=np.float64)
    p = segments[:, 0, :]
    q = segments[:, 1, :]

    def codes(pts: np.ndarray) -> np.ndarray:
        c = np.zeros(len(pts), dtype=np.int8)
        c |= np.where(pts[:, 0] < box.xmin, LEFT, 0).astype(np.int8)
        c |= np.where(pts[:, 0] > box.xmax, RIGHT, 0).astype(np.int8)
        c |= np.where(pts[:, 1] < box.ymin, BOTTOM, 0).astype(np.int8)
        c |= np.where(pts[:, 1] > box.ymax, TOP, 0).astype(np.int8)
        return c

    c0 = codes(p)
    c1 = codes(q)
    trivially_inside = (c0 == 0) | (c1 == 0)
    trivially_rejected = (c0 & c1) != 0

    # Remaining segments: both endpoints outside, no shared half-plane.
    # The segment hits the box iff the four box corners do not all lie
    # strictly on the same side of the segment's supporting line.
    d = q - p
    corners = np.array(list(box.corners()), dtype=np.float64)  # (4, 2)
    # cross[i, k] = d_i x (corner_k - p_i)
    rel = corners[None, :, :] - p[:, None, :]
    cross = d[:, None, 0] * rel[:, :, 1] - d[:, None, 1] * rel[:, :, 0]
    all_pos = np.all(cross > 0, axis=1)
    all_neg = np.all(cross < 0, axis=1)
    line_separates = all_pos | all_neg

    return trivially_inside | (~trivially_rejected & ~line_separates)
