"""Robust geometric predicates.

The mesh generator's correctness rests on two predicates: ``orient2d``
(which side of a directed line a point lies on) and ``incircle`` (whether a
point lies inside the circumcircle of a triangle).  Both are evaluated as
signs of small determinants.  Plain floating-point evaluation misclassifies
near-degenerate inputs, which in a Delaunay kernel manifests as inverted
triangles and infinite flip loops.

We use the standard two-stage scheme popularised by Shewchuk:

1. a fast floating-point evaluation with a forward error bound (the
   *filter*); when the magnitude of the float result exceeds the bound, its
   sign is provably correct and we return it;
2. otherwise an exact evaluation using :class:`fractions.Fraction`
   (arbitrary-precision rationals; Python floats convert exactly).

The exact stage is slow but is only reached for (near-)degenerate inputs,
which are rare in practice, so the amortised cost is close to the plain
float cost.  Vectorised batch versions (filter-only, with a mask of
uncertain entries escalated to the exact path) are provided for the hot
loops of the triangulation kernel.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np

__all__ = [
    "orient2d",
    "orient2d_batch",
    "orient2d_batch3",
    "incircle",
    "incircle_batch",
    "ORIENT_CCW",
    "ORIENT_CW",
    "ORIENT_COLLINEAR",
    "ORIENT_ERR_BOUND",
    "INCIRCLE_ERR_BOUND",
    "ORIENT_UNDERFLOW_GUARD",
    "INCIRCLE_UNDERFLOW_GUARD",
    "batch_exact_counts",
    "exact_eq",
]

# Sign conventions (matching Shewchuk's Triangle):
#   orient2d(a, b, c) > 0  <=>  a, b, c in counter-clockwise order
#   incircle(a, b, c, d) > 0 <=> d strictly inside circumcircle of ccw (a,b,c)
ORIENT_CCW = 1
ORIENT_CW = -1
ORIENT_COLLINEAR = 0

# Machine epsilon for double precision (2^-53).
_EPS = np.finfo(np.float64).eps / 2.0
# Forward error-bound coefficients (Shewchuk, "Adaptive Precision
# Floating-Point Arithmetic and Fast Robust Geometric Predicates", 1997).
_CCW_ERR_BOUND = (3.0 + 16.0 * _EPS) * _EPS
_ICC_ERR_BOUND = (10.0 + 96.0 * _EPS) * _EPS
# Shewchuk's bounds assume no under/overflow.  A float64 product can
# underflow to zero or a subnormal (absolute error up to 2^-1074), which
# would let the filter certify a *wrong* sign when every term is tiny.
# Whenever the magnitude sum falls below these guards the relative error
# bound no longer dominates the worst-case absolute subnormal error, so we
# escalate to the exact path instead.
_ORIENT_UNDERFLOW_GUARD = 1e-280
_ICC_UNDERFLOW_GUARD = 1e-250

# Public aliases so callers that inline the filter stage (the Delaunay
# kernel's hot loops) share one source of truth for the bounds.
ORIENT_ERR_BOUND = _CCW_ERR_BOUND
INCIRCLE_ERR_BOUND = _ICC_ERR_BOUND
ORIENT_UNDERFLOW_GUARD = _ORIENT_UNDERFLOW_GUARD
INCIRCLE_UNDERFLOW_GUARD = _ICC_UNDERFLOW_GUARD

# Escalation tallies for the batch predicates: entries whose filter stage
# was inconclusive and fell through to exact rational arithmetic.  Callers
# snapshot around a batch call to attribute escalations (the counters
# layer reports the rate); plain ints, so the cost is one addition per
# batch call.
_batch_exact = {"orient2d": 0, "incircle": 0}


def batch_exact_counts() -> dict:
    """Running totals of exact-path escalations inside the batch predicates."""
    return dict(_batch_exact)


def exact_eq(a, b):
    """Intentional bitwise float equality (scalar or elementwise array).

    Geometric code is forbidden (lint rule R2) from writing a bare
    ``x == 0.0``: the reader cannot tell a tolerance bug from a
    deliberate exact-representation test.  This helper *names* the
    intent — true-zero guards before division, duplicate-coordinate
    detection, sentinel defaults — and is the sanctioned spelling.
    Anything that actually wants a tolerance must not come here.
    """
    return a == b


def _orient2d_exact(ax, ay, bx, by, cx, cy) -> int:
    """Exact sign of the 2x2 orientation determinant via rationals."""
    ax, ay = Fraction(ax), Fraction(ay)
    bx, by = Fraction(bx), Fraction(by)
    cx, cy = Fraction(cx), Fraction(cy)
    det = (ax - cx) * (by - cy) - (ay - cy) * (bx - cx)
    if det > 0:
        return ORIENT_CCW
    if det < 0:
        return ORIENT_CW
    return ORIENT_COLLINEAR


def orient2d(a, b, c) -> int:
    """Return the orientation of the ordered point triple ``(a, b, c)``.

    Parameters are ``(x, y)`` pairs (any indexable of two floats).

    Returns :data:`ORIENT_CCW` (+1) when the triple turns counter-clockwise,
    :data:`ORIENT_CW` (-1) when clockwise, :data:`ORIENT_COLLINEAR` (0) when
    the three points are exactly collinear.  The result is exact.
    """
    ax, ay = float(a[0]), float(a[1])
    bx, by = float(b[0]), float(b[1])
    cx, cy = float(c[0]), float(c[1])

    detleft = (ax - cx) * (by - cy)
    detright = (ay - cy) * (bx - cx)
    det = detleft - detright

    # Exact-zero shortcuts: a float product is a TRUE zero only when one of
    # its factors is zero (a zero result with nonzero factors is underflow,
    # which must not be trusted).  A nonzero float product always carries
    # the true sign.
    lzero = ax == cx or by == cy
    rzero = ay == cy or bx == cx
    if lzero and rzero:
        return ORIENT_COLLINEAR
    if lzero:
        if detright > 0.0:
            return ORIENT_CW
        if detright < 0.0:
            return ORIENT_CCW
        return _orient2d_exact(ax, ay, bx, by, cx, cy)  # detright underflowed
    if rzero:
        if detleft > 0.0:
            return ORIENT_CCW
        if detleft < 0.0:
            return ORIENT_CW
        return _orient2d_exact(ax, ay, bx, by, cx, cy)  # detleft underflowed

    detsum = abs(detleft) + abs(detright)
    errbound = _CCW_ERR_BOUND * detsum
    if detsum > _ORIENT_UNDERFLOW_GUARD:
        if det > errbound:
            return ORIENT_CCW
        if -det > errbound:
            return ORIENT_CW
    return _orient2d_exact(ax, ay, bx, by, cx, cy)


def orient2d_batch(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> np.ndarray:
    """Vectorised :func:`orient2d` over arrays of shape ``(n, 2)``.

    Entries whose floating-point filter is inconclusive are escalated to the
    exact rational path individually, so the returned sign array is exact.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    c = np.asarray(c, dtype=np.float64)
    detleft = (a[..., 0] - c[..., 0]) * (b[..., 1] - c[..., 1])
    detright = (a[..., 1] - c[..., 1]) * (b[..., 0] - c[..., 0])
    det = detleft - detright
    detsum = np.abs(detleft) + np.abs(detright)
    errbound = _CCW_ERR_BOUND * detsum

    # True-zero detection (see scalar orient2d): a zero product with both
    # factors nonzero is an underflow and cannot be trusted.
    lzero = (a[..., 0] == c[..., 0]) | (b[..., 1] == c[..., 1])
    rzero = (a[..., 1] == c[..., 1]) | (b[..., 0] == c[..., 0])
    both_zero = lzero & rzero
    certified = (detsum > _ORIENT_UNDERFLOW_GUARD) & (np.abs(det) > errbound)
    certified |= lzero & (detright != 0.0)
    certified |= rzero & (detleft != 0.0)

    out = np.zeros(det.shape, dtype=np.int8)
    out[certified & (det > 0)] = ORIENT_CCW
    out[certified & (det < 0)] = ORIENT_CW
    uncertain = np.flatnonzero(~certified & ~both_zero)
    _batch_exact["orient2d"] += len(uncertain)
    for i in uncertain:
        out[i] = _orient2d_exact(
            a[i, 0], a[i, 1], b[i, 0], b[i, 1], c[i, 0], c[i, 1]
        )
    return out


def orient2d_batch3(u: np.ndarray, v: np.ndarray, p: np.ndarray
                    ) -> np.ndarray:
    """Exact signs of ``orient2d(u[i, k], v[i, k], p[i])`` as ``(m, 3)``.

    The vectorised cavity walk asks one question per step: for every
    still-walking point, which of its triangle's three directed edges
    is it strictly right of?  ``u``/``v`` are ``(m, 3, 2)`` edge
    endpoint arrays and ``p`` is ``(m, 2)``.  The query flattens to one
    :func:`orient2d_batch` call (whose exact-escalation path indexes
    flat ``(n, 2)`` inputs), so every sign is exact and escalations
    land in the shared ``orient2d`` batch tally.
    """
    u = np.asarray(u, dtype=np.float64).reshape(-1, 2)
    v = np.asarray(v, dtype=np.float64).reshape(-1, 2)
    p3 = np.repeat(np.asarray(p, dtype=np.float64), 3, axis=0)
    return orient2d_batch(u, v, p3).reshape(-1, 3)


def _incircle_exact(ax, ay, bx, by, cx, cy, dx, dy) -> int:
    """Exact sign of the 4x4 incircle determinant via rationals."""
    ax, ay = Fraction(ax), Fraction(ay)
    bx, by = Fraction(bx), Fraction(by)
    cx, cy = Fraction(cx), Fraction(cy)
    dx, dy = Fraction(dx), Fraction(dy)

    adx, ady = ax - dx, ay - dy
    bdx, bdy = bx - dx, by - dy
    cdx, cdy = cx - dx, cy - dy

    alift = adx * adx + ady * ady
    blift = bdx * bdx + bdy * bdy
    clift = cdx * cdx + cdy * cdy

    det = (
        alift * (bdx * cdy - cdx * bdy)
        + blift * (cdx * ady - adx * cdy)
        + clift * (adx * bdy - bdx * ady)
    )
    if det > 0:
        return 1
    if det < 0:
        return -1
    return 0


def incircle(a, b, c, d) -> int:
    """Sign of the incircle test for point ``d`` against triangle ``(a,b,c)``.

    For a *counter-clockwise* triangle, returns +1 when ``d`` lies strictly
    inside the circumcircle, -1 when strictly outside, 0 when cocircular.
    For a clockwise triangle the sign is flipped (standard determinant
    behaviour); callers keep triangles CCW.  The result is exact.
    """
    ax, ay = float(a[0]), float(a[1])
    bx, by = float(b[0]), float(b[1])
    cx, cy = float(c[0]), float(c[1])
    dx, dy = float(d[0]), float(d[1])

    adx, ady = ax - dx, ay - dy
    bdx, bdy = bx - dx, by - dy
    cdx, cdy = cx - dx, cy - dy

    bdxcdy = bdx * cdy
    cdxbdy = cdx * bdy
    alift = adx * adx + ady * ady

    cdxady = cdx * ady
    adxcdy = adx * cdy
    blift = bdx * bdx + bdy * bdy

    adxbdy = adx * bdy
    bdxady = bdx * ady
    clift = cdx * cdx + cdy * cdy

    det = (
        alift * (bdxcdy - cdxbdy)
        + blift * (cdxady - adxcdy)
        + clift * (adxbdy - bdxady)
    )

    permanent = (
        (abs(bdxcdy) + abs(cdxbdy)) * alift
        + (abs(cdxady) + abs(adxcdy)) * blift
        + (abs(adxbdy) + abs(bdxady)) * clift
    )
    errbound = _ICC_ERR_BOUND * permanent
    if permanent > _ICC_UNDERFLOW_GUARD:
        if det > errbound:
            return 1
        if -det > errbound:
            return -1
    return _incircle_exact(ax, ay, bx, by, cx, cy, dx, dy)


def incircle_batch(
    a: np.ndarray, b: np.ndarray, c: np.ndarray, d: np.ndarray
) -> np.ndarray:
    """Vectorised :func:`incircle` over arrays of shape ``(n, 2)``.

    ``d`` may be a single ``(2,)`` query shared by every row or an
    ``(n, 2)`` per-row query; it is broadcast up front so the exact
    escalation loop can index rows uniformly.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    c = np.asarray(c, dtype=np.float64)
    d = np.broadcast_to(np.asarray(d, dtype=np.float64), a.shape)

    adx, ady = a[..., 0] - d[..., 0], a[..., 1] - d[..., 1]
    bdx, bdy = b[..., 0] - d[..., 0], b[..., 1] - d[..., 1]
    cdx, cdy = c[..., 0] - d[..., 0], c[..., 1] - d[..., 1]

    bdxcdy = bdx * cdy
    cdxbdy = cdx * bdy
    alift = adx * adx + ady * ady
    cdxady = cdx * ady
    adxcdy = adx * cdy
    blift = bdx * bdx + bdy * bdy
    adxbdy = adx * bdy
    bdxady = bdx * ady
    clift = cdx * cdx + cdy * cdy

    det = (
        alift * (bdxcdy - cdxbdy)
        + blift * (cdxady - adxcdy)
        + clift * (adxbdy - bdxady)
    )
    permanent = (
        (np.abs(bdxcdy) + np.abs(cdxbdy)) * alift
        + (np.abs(cdxady) + np.abs(adxcdy)) * blift
        + (np.abs(adxbdy) + np.abs(bdxady)) * clift
    )
    errbound = _ICC_ERR_BOUND * permanent

    certified = (permanent > _ICC_UNDERFLOW_GUARD) & (np.abs(det) > errbound)
    out = np.zeros(det.shape, dtype=np.int8)
    out[certified & (det > 0)] = 1
    out[certified & (det < 0)] = -1
    uncertain = np.flatnonzero(~certified)
    _batch_exact["incircle"] += len(uncertain)
    for i in uncertain:
        out[i] = _incircle_exact(
            a[i, 0], a[i, 1], b[i, 0], b[i, 1],
            c[i, 0], c[i, 1], d[i, 0], d[i, 1],
        )
    return out
