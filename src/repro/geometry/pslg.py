"""Planar straight-line graph (PSLG) input geometry.

The mesher's input (paper Section II.A) is a PSLG: the discretised surface
of one or more airfoil elements, each a closed polygonal loop, plus an
optional far-field boundary.  This module stores the structure and provides
the loop-level accessors the boundary-layer generator needs: ordered
vertices per loop, forward/backward neighbours, edge tangents, orientation
normalisation, and bounding geometry.

Conventions
-----------
* Loops representing *solid bodies* (airfoil elements) are stored
  counter-clockwise, so the outward normal (into the fluid) at an edge is
  the left perpendicular of the edge tangent... for a CCW loop traversed in
  order, the interior is on the left, hence the *outward* normal is the
  right perpendicular.  We normalise all body loops to CCW on construction
  and compute outward normals accordingly.
* Vertex coordinates are stored in one contiguous ``(n, 2)`` float64 array
  (structure-of-arrays, cache-friendly iteration per the implementation
  notes in paper Section III).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .aabb import AABB
from .predicates import exact_eq
from .primitives import polygon_area

__all__ = ["Loop", "PSLG"]


@dataclass
class Loop:
    """A closed polygonal loop: indices into the owning PSLG's vertex array.

    ``indices[k]`` and ``indices[(k+1) % len]`` bound edge ``k``.
    """

    indices: np.ndarray
    name: str = ""
    is_body: bool = True  # solid body (airfoil element) vs far-field border

    def __post_init__(self) -> None:
        self.indices = np.asarray(self.indices, dtype=np.int64)
        if len(self.indices) < 3:
            raise ValueError(f"loop {self.name!r} needs >= 3 vertices")
        if len(np.unique(self.indices)) != len(self.indices):
            raise ValueError(f"loop {self.name!r} repeats a vertex")

    def __len__(self) -> int:
        return len(self.indices)

    def edges(self) -> Iterator[Tuple[int, int]]:
        n = len(self.indices)
        for k in range(n):
            yield int(self.indices[k]), int(self.indices[(k + 1) % n])


class PSLG:
    """Planar straight-line graph with named closed loops.

    Parameters
    ----------
    points:
        ``(n, 2)`` array of vertex coordinates.
    loops:
        Sequence of :class:`Loop` (or raw index sequences, promoted to
        body loops).  Body loops are re-oriented counter-clockwise.
    """

    def __init__(self, points: np.ndarray, loops: Sequence) -> None:
        self.points = np.ascontiguousarray(np.asarray(points, dtype=np.float64))
        if self.points.ndim != 2 or self.points.shape[1] != 2:
            raise ValueError("points must have shape (n, 2)")
        if not np.all(np.isfinite(self.points)):
            raise ValueError("PSLG points must be finite")

        self.loops: List[Loop] = []
        for i, lp in enumerate(loops):
            if not isinstance(lp, Loop):
                lp = Loop(np.asarray(lp), name=f"loop{i}")
            if lp.indices.max() >= len(self.points) or lp.indices.min() < 0:
                raise ValueError(f"loop {lp.name!r} indexes out of range")
            pts = self.points[lp.indices]
            if polygon_area(pts) < 0:
                lp = Loop(lp.indices[::-1].copy(), name=lp.name,
                          is_body=lp.is_body)
            self.loops.append(lp)

        used = np.zeros(len(self.points), dtype=bool)
        for lp in self.loops:
            if used[lp.indices].any():
                raise ValueError("loops share vertices; PSLG loops must be disjoint")
            used[lp.indices] = True

    # ------------------------------------------------------------------
    # Structure accessors
    # ------------------------------------------------------------------
    @property
    def n_points(self) -> int:
        return len(self.points)

    @property
    def body_loops(self) -> List[Loop]:
        return [lp for lp in self.loops if lp.is_body]

    def loop_points(self, loop: Loop) -> np.ndarray:
        """Coordinates of a loop's vertices in order, shape ``(m, 2)``."""
        return self.points[loop.indices]

    def all_segments(self) -> np.ndarray:
        """All loop edges as an ``(m, 2)`` array of vertex index pairs."""
        segs: List[Tuple[int, int]] = []
        for lp in self.loops:
            segs.extend(lp.edges())
        return np.asarray(segs, dtype=np.int64)

    def bbox(self, *, bodies_only: bool = False) -> AABB:
        if bodies_only:
            idx = np.concatenate([lp.indices for lp in self.body_loops])
            return AABB.of_points(self.points[idx])
        return AABB.of_points(self.points)

    def chord_length(self) -> float:
        """Reference chord: the x-extent of the union of body loops.

        Aerospace convention — the far-field extent is expressed in chord
        lengths (paper Section II.E uses 30-50 chords).
        """
        box = self.bbox(bodies_only=True)
        return box.width

    # ------------------------------------------------------------------
    # Per-loop differential quantities
    # ------------------------------------------------------------------
    def loop_edge_tangents(self, loop: Loop) -> np.ndarray:
        """Unit tangents of each loop edge, shape ``(m, 2)``."""
        pts = self.loop_points(loop)
        nxt = np.roll(pts, -1, axis=0)
        d = nxt - pts
        lengths = np.linalg.norm(d, axis=1)
        if np.any(exact_eq(lengths, 0.0)):
            raise ValueError("zero-length edge in loop")
        return d / lengths[:, None]

    def loop_edge_lengths(self, loop: Loop) -> np.ndarray:
        pts = self.loop_points(loop)
        nxt = np.roll(pts, -1, axis=0)
        return np.linalg.norm(nxt - pts, axis=1)

    def min_edge_length(self) -> float:
        return min(float(self.loop_edge_lengths(lp).min()) for lp in self.loops)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_loops(cls, loop_points: Sequence[np.ndarray],
                   names: Optional[Sequence[str]] = None,
                   is_body: Optional[Sequence[bool]] = None) -> "PSLG":
        """Build a PSLG from per-loop coordinate arrays."""
        names = list(names) if names is not None else [
            f"loop{i}" for i in range(len(loop_points))
        ]
        is_body = list(is_body) if is_body is not None else [True] * len(loop_points)
        all_pts: List[np.ndarray] = []
        loops: List[Loop] = []
        offset = 0
        for pts, name, body in zip(loop_points, names, is_body):
            pts = np.asarray(pts, dtype=np.float64)
            # Drop a duplicated closing vertex if present.
            if len(pts) > 1 and np.allclose(pts[0], pts[-1]):
                pts = pts[:-1]
            all_pts.append(pts)
            loops.append(Loop(np.arange(offset, offset + len(pts)),
                              name=name, is_body=body))
            offset += len(pts)
        return cls(np.vstack(all_pts), loops)

    def __repr__(self) -> str:
        return (f"PSLG(n_points={self.n_points}, "
                f"loops={[lp.name for lp in self.loops]})")
