"""Geometric substrate: predicates, primitives, boxes, clipping, PSLG, airfoils."""

from .aabb import AABB, boxes_from_segments, segment_extent_box
from .airfoils import (
    farfield_box,
    naca4,
    naca0012,
    three_element_airfoil,
)
from .clipping import clip_segment, segment_intersects_box
from .predicates import incircle, orient2d
from .primitives import (
    angle_between,
    circumcenter,
    circumradius,
    distance,
    normalize,
    polygon_area,
    segment_intersection_point,
    segments_intersect,
    signed_turn_angle,
    triangle_angles,
    triangle_area,
)
from .pslg import PSLG, Loop
from .resample import loop_curvature, resample_curvature, resample_uniform

__all__ = [
    "AABB",
    "Loop",
    "PSLG",
    "angle_between",
    "boxes_from_segments",
    "circumcenter",
    "circumradius",
    "clip_segment",
    "distance",
    "farfield_box",
    "incircle",
    "loop_curvature",
    "naca4",
    "naca0012",
    "normalize",
    "orient2d",
    "polygon_area",
    "resample_curvature",
    "resample_uniform",
    "segment_extent_box",
    "segment_intersection_point",
    "segment_intersects_box",
    "segments_intersect",
    "signed_turn_angle",
    "three_element_airfoil",
    "triangle_angles",
    "triangle_area",
]
