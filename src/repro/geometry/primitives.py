"""Low-level geometric primitives: segments, angles, normals, projections.

All routines accept plain ``(x, y)`` tuples or NumPy arrays and are written
against the robust predicates in :mod:`repro.geometry.predicates` wherever a
sign decision matters.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from .predicates import ORIENT_COLLINEAR, exact_eq, orient2d

__all__ = [
    "Point",
    "distance",
    "distance_sq",
    "normalize",
    "perp_left",
    "perp_right",
    "angle_between",
    "signed_turn_angle",
    "segments_intersect",
    "segment_intersection_point",
    "segment_point_distance",
    "point_on_segment",
    "polygon_area",
    "polygon_is_ccw",
    "circumcenter",
    "circumradius",
    "triangle_area",
    "triangle_angles",
    "lerp_unit",
    "rotate",
    "slerp_unit",
]

Point = Tuple[float, float]


def distance_sq(a, b) -> float:
    """Squared Euclidean distance between two points."""
    dx = b[0] - a[0]
    dy = b[1] - a[1]
    return dx * dx + dy * dy


def distance(a, b) -> float:
    """Euclidean distance between two points."""
    return math.sqrt(distance_sq(a, b))


def normalize(v) -> Tuple[float, float]:
    """Return ``v`` scaled to unit length.

    Raises :class:`ValueError` for the zero vector — callers in the
    boundary-layer code must never emit degenerate normals silently.
    """
    n = math.hypot(v[0], v[1])
    if exact_eq(n, 0.0):
        raise ValueError("cannot normalize zero-length vector")
    return (v[0] / n, v[1] / n)


def perp_left(v) -> Tuple[float, float]:
    """The vector ``v`` rotated 90 degrees counter-clockwise."""
    return (-v[1], v[0])


def perp_right(v) -> Tuple[float, float]:
    """The vector ``v`` rotated 90 degrees clockwise."""
    return (v[1], -v[0])


def rotate(v, theta: float) -> Tuple[float, float]:
    """Rotate vector ``v`` by ``theta`` radians counter-clockwise."""
    c, s = math.cos(theta), math.sin(theta)
    return (c * v[0] - s * v[1], s * v[0] + c * v[1])


def angle_between(u, v) -> float:
    """Unsigned angle in radians between vectors ``u`` and ``v`` in [0, pi].

    Uses ``atan2(|u x v|, u . v)`` which is numerically stable for nearly
    parallel and nearly opposite vectors (unlike the acos formulation).
    """
    cross = u[0] * v[1] - u[1] * v[0]
    dot = u[0] * v[0] + u[1] * v[1]
    return math.atan2(abs(cross), dot)


def signed_turn_angle(u, v) -> float:
    """Signed angle in radians from ``u`` to ``v`` in (-pi, pi].

    Positive when ``v`` is counter-clockwise from ``u``.
    """
    cross = u[0] * v[1] - u[1] * v[0]
    dot = u[0] * v[0] + u[1] * v[1]
    return math.atan2(cross, dot)


def point_on_segment(p, a, b) -> bool:
    """True if point ``p`` lies on the closed segment ``ab`` (exact test)."""
    if orient2d(a, b, p) != ORIENT_COLLINEAR:
        return False
    return (
        min(a[0], b[0]) <= p[0] <= max(a[0], b[0])
        and min(a[1], b[1]) <= p[1] <= max(a[1], b[1])
    )


def segments_intersect(p1, p2, q1, q2, *, proper_only: bool = False) -> bool:
    """Exact test whether segments ``p1p2`` and ``q1q2`` intersect.

    With ``proper_only=True`` only *proper* crossings count (the segments
    cross at a single interior point of both); shared endpoints and
    collinear overlaps are ignored.  The boundary-layer intersection
    resolution uses ``proper_only=True`` because adjacent rays legitimately
    share their origin on the surface.
    """
    d1 = orient2d(q1, q2, p1)
    d2 = orient2d(q1, q2, p2)
    d3 = orient2d(p1, p2, q1)
    d4 = orient2d(p1, p2, q2)

    if d1 != d2 and d3 != d4 and d1 != 0 and d2 != 0 and d3 != 0 and d4 != 0:
        return True
    if proper_only:
        return False
    # Improper cases: touching or collinear overlap.
    if d1 == 0 and point_on_segment(p1, q1, q2):
        return True
    if d2 == 0 and point_on_segment(p2, q1, q2):
        return True
    if d3 == 0 and point_on_segment(q1, p1, p2):
        return True
    if d4 == 0 and point_on_segment(q2, p1, p2):
        return True
    # General (non-collinear) crossing with an endpoint on the other segment
    # is covered above; remaining case is a strict crossing.
    return d1 != d2 and d3 != d4


def segment_intersection_point(p1, p2, q1, q2) -> Optional[Tuple[float, float]]:
    """Intersection point of segments ``p1p2`` and ``q1q2``, or ``None``.

    Returns the crossing point for proper and endpoint-touching
    intersections.  For collinear overlaps returns an arbitrary shared
    point.  The coordinates are computed in floating point; the *existence*
    decision is exact.
    """
    if not segments_intersect(p1, p2, q1, q2):
        return None
    rx, ry = p2[0] - p1[0], p2[1] - p1[1]
    sx, sy = q2[0] - q1[0], q2[1] - q1[1]
    denom = rx * sy - ry * sx
    if exact_eq(denom, 0.0):
        # Collinear overlap: return an endpoint lying on the other segment.
        for pt in (p1, p2, q1, q2):
            if point_on_segment(pt, q1, q2) and point_on_segment(pt, p1, p2):
                return (float(pt[0]), float(pt[1]))
        return None
    t = ((q1[0] - p1[0]) * sy - (q1[1] - p1[1]) * sx) / denom
    return (p1[0] + t * rx, p1[1] + t * ry)


def segment_point_distance(p, a, b) -> float:
    """Distance from point ``p`` to the closed segment ``ab``."""
    abx, aby = b[0] - a[0], b[1] - a[1]
    apx, apy = p[0] - a[0], p[1] - a[1]
    denom = abx * abx + aby * aby
    if exact_eq(denom, 0.0):
        return distance(p, a)
    t = (apx * abx + apy * aby) / denom
    t = max(0.0, min(1.0, t))
    cx, cy = a[0] + t * abx, a[1] + t * aby
    return math.hypot(p[0] - cx, p[1] - cy)


def polygon_area(pts) -> float:
    """Signed area of a simple polygon (positive when counter-clockwise)."""
    pts = np.asarray(pts, dtype=np.float64)
    x, y = pts[:, 0], pts[:, 1]
    return 0.5 * float(np.sum(x * np.roll(y, -1) - np.roll(x, -1) * y))


def polygon_is_ccw(pts) -> bool:
    """True if the simple polygon ``pts`` is counter-clockwise oriented."""
    return polygon_area(pts) > 0.0


def triangle_area(a, b, c) -> float:
    """Signed area of triangle ``(a, b, c)`` (positive when CCW)."""
    return 0.5 * (
        (b[0] - a[0]) * (c[1] - a[1]) - (b[1] - a[1]) * (c[0] - a[0])
    )


def circumcenter(a, b, c) -> Tuple[float, float]:
    """Circumcenter of triangle ``(a, b, c)``.

    Computed relative to ``a`` for numerical stability (Shewchuk's
    formulation).  Raises :class:`ValueError` for degenerate triangles.
    """
    bax, bay = b[0] - a[0], b[1] - a[1]
    cax, cay = c[0] - a[0], c[1] - a[1]
    d = 2.0 * (bax * cay - bay * cax)
    if exact_eq(d, 0.0):
        raise ValueError("degenerate triangle has no circumcenter")
    b2 = bax * bax + bay * bay
    c2 = cax * cax + cay * cay
    ux = (cay * b2 - bay * c2) / d
    uy = (bax * c2 - cax * b2) / d
    return (a[0] + ux, a[1] + uy)


def circumradius(a, b, c) -> float:
    """Circumradius of triangle ``(a, b, c)`` (inf for degenerate input)."""
    try:
        cc = circumcenter(a, b, c)
    except ValueError:
        return math.inf
    return distance(cc, a)


def triangle_angles(a, b, c) -> Tuple[float, float, float]:
    """Interior angles (radians) at vertices ``a``, ``b``, ``c``."""
    ang_a = angle_between((b[0] - a[0], b[1] - a[1]), (c[0] - a[0], c[1] - a[1]))
    ang_b = angle_between((a[0] - b[0], a[1] - b[1]), (c[0] - b[0], c[1] - b[1]))
    ang_c = math.pi - ang_a - ang_b
    return (ang_a, ang_b, ang_c)


def slerp_unit(u, v, t: float) -> Tuple[float, float]:
    """Spherical (constant-angular-rate) interpolation of unit vectors.

    Rotates ``u`` by ``t`` times the signed angle from ``u`` to ``v``, so a
    fan built with uniform ``t`` steps has uniform angular spacing even
    across a near-reversal cusp (where chord interpolation degenerates).
    For exactly opposite vectors the rotation sweeps counter-clockwise.
    """
    theta = signed_turn_angle(u, v)
    if exact_eq(theta, 0.0) and (u[0] * v[0] + u[1] * v[1]) < 0:
        theta = math.pi  # antipodal: atan2 gives +pi already, guard -0.0
    return rotate(u, t * theta)


def lerp_unit(u, v, t: float) -> Tuple[float, float]:
    """Linearly interpolate between unit vectors ``u`` and ``v``, renormalised.

    This is the paper's linear interpolation of normals used for refining
    rays in large-angle regions and for cusp fans (Section II.B).  For
    ``t=0`` returns ``u``; for ``t=1`` returns ``v``.  Falls back to the
    perpendicular when ``u`` and ``v`` are exactly opposite (the blend
    vanishes), which matches the fan behaviour at a 180-degree cusp.
    """
    x = (1.0 - t) * u[0] + t * v[0]
    y = (1.0 - t) * u[1] + t * v[1]
    n = math.hypot(x, y)
    if n < 1e-300:
        # u == -v: any blend is ambiguous; rotate u toward v's side.
        return perp_left(u) if (u[0] * v[1] - u[1] * v[0]) >= 0 else perp_right(u)
    return (x / n, y / n)
