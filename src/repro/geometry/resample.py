"""Surface resampling: arc-length and curvature-adaptive distributions.

The mesher's input quality depends on the surface point distribution (the
paper reads "1,500 surface vertices" per configuration).  Raw coordinate
sets from airfoil databases are often too coarse at the leading edge or
unevenly spaced; this module redistributes the vertices of a closed loop:

* :func:`resample_uniform` — equal arc-length spacing;
* :func:`resample_curvature` — spacing inversely proportional to local
  curvature (clustering at leading edges and around coves) with bounds,
  the aerospace-standard distribution the cosine rule approximates for
  clean NACA sections;
* :func:`loop_curvature` — discrete curvature estimate per vertex.

Resampling interpolates along the original polyline (no smoothing), so
sharp features (cusps, blunt bases) are preserved exactly: vertices whose
exterior turn exceeds ``corner_angle`` are pinned.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from .primitives import signed_turn_angle

__all__ = ["loop_curvature", "resample_uniform", "resample_curvature"]


def _closed(coords: np.ndarray) -> np.ndarray:
    coords = np.asarray(coords, dtype=np.float64)
    if coords.ndim != 2 or coords.shape[1] != 2 or len(coords) < 3:
        raise ValueError("need a closed loop of >= 3 points")
    return coords


def loop_curvature(coords: np.ndarray) -> np.ndarray:
    """Discrete curvature magnitude at each vertex of a closed loop.

    Uses the turn angle over the mean adjacent edge length — exact for
    sampled circles (kappa = 1/R) and robust at corners (finite, large).
    """
    coords = _closed(coords)
    n = len(coords)
    prev = np.roll(coords, 1, axis=0)
    nxt = np.roll(coords, -1, axis=0)
    kappa = np.empty(n)
    for i in range(n):
        t_in = coords[i] - prev[i]
        t_out = nxt[i] - coords[i]
        l_in = math.hypot(*t_in)
        l_out = math.hypot(*t_out)
        if l_in == 0 or l_out == 0:
            raise ValueError("duplicate consecutive vertices")
        ang = abs(signed_turn_angle((t_in[0], t_in[1]),
                                    (t_out[0], t_out[1])))
        kappa[i] = ang / (0.5 * (l_in + l_out))
    return kappa


def _arclength(coords: np.ndarray) -> np.ndarray:
    d = np.linalg.norm(np.diff(np.vstack([coords, coords[:1]]), axis=0),
                       axis=1)
    return np.concatenate([[0.0], np.cumsum(d)])


def _interp_on_loop(coords: np.ndarray, arc: np.ndarray,
                    s: float) -> Tuple[float, float]:
    total = arc[-1]
    s = s % total
    i = int(np.searchsorted(arc, s, side="right")) - 1
    i = min(max(i, 0), len(coords) - 1)
    s0, s1 = arc[i], arc[i + 1]
    t = 0.0 if s1 == s0 else (s - s0) / (s1 - s0)
    a = coords[i]
    b = coords[(i + 1) % len(coords)]
    return (a[0] + t * (b[0] - a[0]), a[1] + t * (b[1] - a[1]))


def _corner_indices(coords: np.ndarray, corner_angle: float) -> List[int]:
    n = len(coords)
    out = []
    prev = np.roll(coords, 1, axis=0)
    nxt = np.roll(coords, -1, axis=0)
    for i in range(n):
        t_in = coords[i] - prev[i]
        t_out = nxt[i] - coords[i]
        if abs(signed_turn_angle((t_in[0], t_in[1]),
                                 (t_out[0], t_out[1]))) >= corner_angle:
            out.append(i)
    return out


def resample_uniform(coords: np.ndarray, n_points: int,
                     *, corner_angle: float = math.radians(40.0)
                     ) -> np.ndarray:
    """Resample a closed loop to ``n_points`` with equal arc spacing.

    Corners (turn >= ``corner_angle``) are preserved exactly; the
    budget is distributed over the inter-corner segments proportionally
    to their lengths.
    """
    return _resample(_closed(coords), n_points, None, corner_angle)


def resample_curvature(
    coords: np.ndarray,
    n_points: int,
    *,
    strength: float = 1.0,
    corner_angle: float = math.radians(40.0),
    max_ratio: float = 20.0,
) -> np.ndarray:
    """Curvature-adaptive resampling of a closed loop.

    Local spacing ~ 1 / (1 + strength * kappa_hat) where ``kappa_hat`` is
    the curvature normalised by the loop's mean; ``max_ratio`` bounds the
    coarsest-to-finest spacing ratio so flat regions are never starved.
    """
    coords = _closed(coords)
    if strength < 0:
        raise ValueError("strength must be non-negative")
    if max_ratio < 1:
        raise ValueError("max_ratio must be >= 1")
    kappa = loop_curvature(coords)
    # Normalise by the median curvature of NON-corner vertices: a single
    # sharp trailing edge must not wash out the smooth-region contrast
    # (corners are pinned exactly by the resampler anyway).
    smooth = np.ones(len(coords), dtype=bool)
    smooth[_corner_indices(coords, corner_angle)] = False
    ref = float(np.median(kappa[smooth])) if smooth.any() else float(
        np.median(kappa))
    ref = ref or 1.0
    density = 1.0 + strength * kappa / ref
    # Bound the finest-to-coarsest spacing contrast.
    density = np.clip(density, 1.0, max_ratio)
    return _resample(coords, n_points, density, corner_angle)


def _resample(coords: np.ndarray, n_points: int,
              density: Optional[np.ndarray],
              corner_angle: float) -> np.ndarray:
    if n_points < 3:
        raise ValueError("need at least 3 output points")
    n = len(coords)
    arc = _arclength(coords)
    total = arc[-1]
    corners = _corner_indices(coords, corner_angle)
    if not corners:
        corners = [0]  # anchor somewhere; the loop has no sharp feature
    if len(corners) >= n_points:
        raise ValueError("more corners than output points")

    # Cumulative density integral along the loop (piecewise constant per
    # edge; edge i spans arc[i]..arc[i+1] with density averaged from its
    # endpoints).
    if density is None:
        edge_w = np.diff(arc)
    else:
        d_edge = 0.5 * (density + np.roll(density, -1))
        edge_w = np.diff(arc) * d_edge
    cum_w = np.concatenate([[0.0], np.cumsum(edge_w)])

    def weight_at(s: float) -> float:
        i = int(np.searchsorted(arc, s, side="right")) - 1
        i = min(max(i, 0), n - 1)
        if arc[i + 1] == arc[i]:
            return float(cum_w[i])
        t = (s - arc[i]) / (arc[i + 1] - arc[i])
        return float(cum_w[i] + t * (cum_w[i + 1] - cum_w[i]))

    # Distribute points between consecutive corners proportionally to the
    # weighted length of each segment.
    corners = sorted(corners)
    seg_bounds = [
        (arc[corners[i]], arc[corners[(i + 1) % len(corners)]]
         + (0 if i + 1 < len(corners) else total))
        for i in range(len(corners))
    ]
    seg_weights = [_segment_weight(weight_at, cum_w[-1], a, b, total)
                   for a, b in seg_bounds]
    budget = n_points - len(corners)
    counts = _apportion(seg_weights, budget)

    out: List[Tuple[float, float]] = []
    for (a, b), cnt in zip(seg_bounds, counts):
        out.append(_interp_on_loop(coords, arc, a))
        if cnt == 0:
            continue
        # Weighted positions: invert the cumulative weight on [a, b].
        w_start = weight_at(a % total)
        w_end = w_start + _segment_weight(weight_at, cum_w[-1], a, b, total)
        for j in range(1, cnt + 1):
            target = w_start + (w_end - w_start) * j / (cnt + 1)
            s = _invert_weight(weight_at, target % cum_w[-1], arc, cum_w)
            out.append(_interp_on_loop(coords, arc, s))
    return np.asarray(out, dtype=np.float64)


def _segment_weight(weight_at, w_total: float, a: float, b: float,
                    total: float) -> float:
    if b <= total:
        return weight_at(b % total if b < total else total - 1e-300) \
            - weight_at(a)
    return (w_total - weight_at(a)) + weight_at(b - total)


def _invert_weight(weight_at, target: float, arc: np.ndarray,
                   cum_w: np.ndarray) -> float:
    i = int(np.searchsorted(cum_w, target, side="right")) - 1
    i = min(max(i, 0), len(arc) - 2)
    w0, w1 = cum_w[i], cum_w[i + 1]
    t = 0.0 if w1 == w0 else (target - w0) / (w1 - w0)
    return float(arc[i] + t * (arc[i + 1] - arc[i]))


def _apportion(weights, budget: int) -> List[int]:
    """Largest-remainder apportionment of ``budget`` over ``weights``."""
    total = sum(weights) or 1.0
    raw = [budget * w / total for w in weights]
    base = [int(math.floor(r)) for r in raw]
    rem = budget - sum(base)
    order = sorted(range(len(raw)), key=lambda i: raw[i] - base[i],
                   reverse=True)
    for i in order[:rem]:
        base[i] += 1
    return base
