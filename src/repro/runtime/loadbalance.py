"""Cost-aware work queues and RMA-window work stealing (Section II.F).

Each rank keeps its subdomains in a priority queue ordered by *estimated
triangle count* — "the subdomain at the front of the queue is estimated
to need the most time to mesh".  Meshing the largest subdomains first
saves the small ones for the aggressive load balancing at the end of the
run.  A global RMA window on the root holds every rank's current load
estimate; a rank whose load falls below a threshold fetches the window,
picks the most-loaded victim, and requests work with plain send/recv
(the paper: "the actual transfer of work is done through MPI send and
receive operations, not RMA").

Termination uses a second window slot as an atomic outstanding-work
counter: +n when items are seeded or spawned, -1 when an item completes;
zero means the whole computation is drained (work may spawn work, so
local emptiness is not termination).
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Tuple

from ..lint import tsan
from .comm import ANY_SOURCE, ANY_TAG, Message, ThreadComm
from .rma import Window

__all__ = ["WorkItem", "WorkQueue", "DistributedWorker", "TAG_STEAL_REQ",
           "TAG_STEAL_REP"]

TAG_STEAL_REQ = 101
TAG_STEAL_REP = 102


@dataclass(order=False)
class WorkItem:
    """One schedulable unit (a subdomain to triangulate or refine)."""

    cost: float
    payload: Any
    kind: str = "generic"
    item_id: int = field(default_factory=itertools.count().__next__)


class WorkQueue:
    """Max-heap of work items by cost with an O(1) total-load figure."""

    def __init__(self, items: Sequence[WorkItem] = ()) -> None:
        self._heap: List[Tuple[float, int, WorkItem]] = []
        self.total_cost = 0.0
        for it in items:
            self.push(it)

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, item: WorkItem) -> None:
        heapq.heappush(self._heap, (-item.cost, item.item_id, item))
        self.total_cost += item.cost

    def pop_largest(self) -> WorkItem:
        _, _, item = heapq.heappop(self._heap)
        self.total_cost -= item.cost
        return item

    def pop_smallest_half(self) -> List[WorkItem]:
        """Donate roughly half the load, smallest items first.

        Small subdomains transfer cheaply (the paper keeps boundary-layer
        subdomains, which have the most points, at the *front* of the
        queue so they are meshed locally rather than shipped).
        """
        if not self._heap:
            return []
        items = sorted((it for _, _, it in self._heap), key=lambda w: w.cost)
        donated: List[WorkItem] = []
        donated_cost = 0.0
        half = self.total_cost / 2.0
        for it in items:
            if donated_cost + it.cost > half:
                break
            donated.append(it)
            donated_cost += it.cost
        if not donated and len(items) > 1:
            donated = [items[0]]
        keep = {d.item_id for d in donated}
        rest = [it for _, _, it in self._heap if it.item_id not in keep]
        self._heap = []
        self.total_cost = 0.0
        for it in rest:
            self.push(it)
        return donated


class DistributedWorker:
    """SPMD mesher loop with window-based work stealing.

    Parameters
    ----------
    comm:
        This rank's communicator endpoint.
    load_window:
        RMA window with one slot per rank (load estimates).
    counter_window:
        RMA window whose slot 0 is the atomic outstanding-item counter.
    process:
        ``process(item) -> (result, new_items)`` — meshing one subdomain,
        optionally spawning more work (recursive decomposition).
    steal_threshold:
        Request work when local load drops below this.
    """

    def __init__(
        self,
        comm: ThreadComm,
        load_window: Window,
        counter_window: Window,
        process: Callable[[WorkItem], Tuple[Any, List[WorkItem]]],
        *,
        steal_threshold: float = 1.0,
        poll_sleep: float = 0.0005,
    ) -> None:
        self.comm = comm
        self.load_window = load_window
        self.counter_window = counter_window
        self.process = process
        self.steal_threshold = steal_threshold
        self.poll_sleep = poll_sleep
        self.queue = WorkQueue()
        self.results: List[Any] = []
        self.n_steals_attempted = 0
        self.n_steals_successful = 0
        self.n_items_processed = 0

    # ------------------------------------------------------------------
    def seed(self, items: Sequence[WorkItem]) -> None:
        """Add initial items; the caller must have already accounted for
        them in the outstanding counter."""
        for it in items:
            self.queue.push(it)
        self._publish_load()

    def _publish_load(self) -> None:
        self.load_window.put(self.queue.total_cost, self.comm.rank)

    def _outstanding(self) -> float:
        return float(self.counter_window.get(0)[0])

    # ------------------------------------------------------------------
    def _service_requests(self) -> None:
        """The communicator-thread role: answer steal requests."""
        while self.comm.iprobe(tag=TAG_STEAL_REQ):
            msg = self.comm.recv(tag=TAG_STEAL_REQ)
            donated = (
                self.queue.pop_smallest_half()
                if self.queue.total_cost > self.steal_threshold
                else []
            )
            self._publish_load()
            self.comm.send(donated, msg.source, tag=TAG_STEAL_REP)

    def _try_steal(self) -> bool:
        """Fetch the window, pick the most loaded rank, request work."""
        loads = self.load_window.get()
        loads[self.comm.rank] = -1.0
        victim = int(loads.argmax())
        if loads[victim] <= self.steal_threshold:
            return False
        self.n_steals_attempted += 1
        self.comm.send(None, victim, tag=TAG_STEAL_REQ)
        msg = None
        while True:
            if self.comm.iprobe(tag=TAG_STEAL_REP):
                msg = self.comm.recv(tag=TAG_STEAL_REP)
                break
            # Keep serving others while waiting (no deadlock among
            # mutually stealing ranks).
            self._service_requests()
            if self._outstanding() <= 0:
                # The computation drained; the victim may already have
                # terminated without answering — do NOT block on a reply
                # that may never come.  (Victims service their queue once
                # more on exit, so any reply that IS coming arrives before
                # run() returns; a stale one is simply dropped with this
                # rank.)
                if self.comm.iprobe(tag=TAG_STEAL_REP):
                    msg = self.comm.recv(tag=TAG_STEAL_REP)
                break
            time.sleep(self.poll_sleep)
        items = (msg.payload if msg is not None else None) or []
        for it in items:
            self.queue.push(it)
        if items:
            self.n_steals_successful += 1
            self._publish_load()
        return bool(items)

    # ------------------------------------------------------------------
    def run(self) -> List[Any]:
        """Process until the global outstanding counter hits zero."""
        while True:
            self._service_requests()
            if len(self.queue):
                item = self.queue.pop_largest()
                self._publish_load()
                # Sanitizer: claiming an item is a write to its identity.
                # A duplicated item (kept AND donated) would be claimed by
                # two ranks with no happens-before edge -> reported race.
                tsan.note_access(("workitem", item.item_id), True)
                result, spawned = self.process(item)
                # +spawned -1 in ONE atomic op: the counter can never dip
                # to zero while spawned work is in flight.
                self.counter_window.fetch_and_op(len(spawned) - 1, 0)
                for it in spawned:
                    self.queue.push(it)
                self._publish_load()
                self.results.append(result)
                self.n_items_processed += 1
                continue
            if self._outstanding() <= 0:
                break
            if not self._try_steal():
                time.sleep(self.poll_sleep)
        # Service any steal requests still parked in the inbox so their
        # senders are never left waiting on a terminated victim.
        self._service_requests()
        self._publish_load()
        return self.results
