"""Meshing as a service: a resident daemon that serves mesh requests.

Everything before this module runs one job and exits: every CLI
invocation pays interpreter startup, geometry construction, executor
setup and (for the processes backend) worker forks before the first
triangle appears.  The service amortizes all of it the way the
semi-speculative distributed adapters keep workers and state resident
across operations — one long-running process owns a warm
:class:`~repro.runtime.executor.WorkerPool` and serves many requests:

* **Wire protocol** — length-prefixed frames over a Unix socket or
  localhost TCP.  A frame is ``magic | kind | payload`` where the
  payload is a :func:`~repro.runtime.serde.buffers_to_bytes` canonical
  stream — the same flat buffer dicts that cross process boundaries
  everywhere else in the runtime, so a request is *defined* by its
  serde bits.

* **Content-addressed cache** — a finished mesh is stored under the
  :func:`~repro.runtime.serde.canonical_hash` of its packed request
  (PSLG + full MeshConfig, BL nested).  Identical geometry + config
  bits hash identically regardless of dict order or how the arrays
  were built, and backend parity guarantees the mesh is a pure function
  of that key.  A hit replies with the stored canonical bytes — a
  pointer hand-off, no re-meshing, no reserialization.

* **Request batching** — concurrent misses are collected for a short
  batching window and dispatched through a *single*
  ``executor.map_workitems`` call (one
  :func:`~repro.core.pipeline.mesh_workitem` per request,
  largest-first by :func:`~repro.core.pipeline.request_cost`), so the
  warm pool parallelizes *across* requests.  Identical in-window
  requests are deduplicated through single-flight futures.

* **Shutdown discipline** — stopping the service while a batch is in
  flight aborts the dispatch through the worker pool's epoch fence
  (:meth:`WorkerPool.abort_call`): in-flight results are quiesced and
  discarded, and every pending client receives a clean ``err`` frame
  instead of a hung socket.

Counters: ``service.requests``, ``service.cache_hits``,
``service.batches``, ``service.batch_size`` / ``service.
latency_seconds`` sample streams, ``service.dedup_joins``,
``service.disconnects``, ``service.errors``.
"""

from __future__ import annotations

import asyncio
import math
import os
import struct
import threading
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from . import counters as counters_mod
from . import executor, serde
from .counters import Counters, monotonic

__all__ = [
    "ServiceError",
    "ServiceUnavailable",
    "FrameError",
    "FRAME_MAGIC",
    "MAX_FRAME_BYTES",
    "encode_frame",
    "read_frame",
    "parse_address",
    "percentile",
    "offload",
    "MeshCache",
    "MeshService",
    "ServiceThread",
]


class ServiceError(RuntimeError):
    """The meshing service could not handle a request."""


class ServiceUnavailable(ServiceError):
    """The service is shutting down; the request was not served."""


class FrameError(ServiceError):
    """A malformed frame arrived on the wire."""


# ----------------------------------------------------------------------
# Frame codec
# ----------------------------------------------------------------------
#: frame magic + protocol version byte; bump on any incompatible change.
FRAME_MAGIC = b"RMS1"

#: header layout: magic (4), kind length (u8), payload length (u64).
FRAME_HEAD = struct.Struct("<4sBQ")

#: hard cap on one frame's payload — far above any real mesh, low
#: enough that a corrupt length field fails instead of allocating.
MAX_FRAME_BYTES = 1 << 36


def encode_frame(kind: str, payload: bytes = b"") -> bytes:
    """One wire frame: header + ascii kind + raw payload bytes."""
    kb = kind.encode("ascii")
    if not kb or len(kb) > 255:
        raise FrameError(f"frame kind must be 1-255 ascii bytes: {kind!r}")
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameError(f"frame payload of {len(payload)} bytes over cap")
    return FRAME_HEAD.pack(FRAME_MAGIC, len(kb), len(payload)) + kb + payload


async def read_frame(reader: asyncio.StreamReader) -> Tuple[str, bytes]:
    """Read one frame; raises ``IncompleteReadError`` on clean EOF."""
    head = await reader.readexactly(FRAME_HEAD.size)
    magic, klen, plen = FRAME_HEAD.unpack(head)
    if magic != FRAME_MAGIC:
        raise FrameError(f"bad frame magic {magic!r} (want {FRAME_MAGIC!r})")
    if plen > MAX_FRAME_BYTES:
        raise FrameError(f"frame payload of {plen} bytes over cap")
    kind = (await reader.readexactly(klen)).decode("ascii")
    payload = await reader.readexactly(plen) if plen else b""
    return kind, payload


# ----------------------------------------------------------------------
# Event-loop hygiene
# ----------------------------------------------------------------------
async def offload(fn: Callable, *args):
    """Run a blocking callable on the loop's default thread pool.

    The sanctioned escape hatch for anything that would stall the event
    loop (pool warmup/shutdown, batch dispatch, filesystem calls): the
    callable is passed by reference, never invoked in the coroutine
    (lint rule R9 enforces exactly this shape).
    """
    return await asyncio.get_running_loop().run_in_executor(None, fn, *args)


def _remove_socket_file(path: str) -> None:
    """Unlink a unix-socket path if present (stale daemon, or teardown)."""
    if os.path.exists(path):
        os.unlink(path)


# ----------------------------------------------------------------------
# Addressing
# ----------------------------------------------------------------------
def parse_address(spec: str) -> Tuple[str, Union[str, Tuple[str, int]]]:
    """Parse an endpoint spec into ``("unix", path)`` or ``("tcp", (h, p))``.

    Accepted forms: ``unix:/run/mesh.sock``, a bare path containing a
    separator, ``tcp:127.0.0.1:7070``, and bare ``host:port``.
    """
    if spec.startswith("unix:"):
        return ("unix", spec[5:])
    if spec.startswith("tcp:"):
        host, _, port = spec[4:].rpartition(":")
        return ("tcp", (host or "127.0.0.1", int(port)))
    if "/" in spec or os.sep in spec:
        return ("unix", spec)
    if ":" in spec:
        host, _, port = spec.rpartition(":")
        return ("tcp", (host, int(port)))
    raise ServiceError(
        f"cannot parse service address {spec!r} — want unix:<path>, a "
        "socket path, or tcp:<host>:<port>")


def percentile(values: List[float], q: float) -> float:
    """Nearest-rank percentile of a sample list (0 for empty input)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = int(math.ceil(q / 100.0 * len(ordered))) - 1
    return float(ordered[min(max(rank, 0), len(ordered) - 1)])


# ----------------------------------------------------------------------
# Content-addressed mesh cache
# ----------------------------------------------------------------------
class MeshCache:
    """LRU store of finalized meshes keyed by request content hash.

    Values are the meshes' canonical byte streams — exactly what goes
    back on the wire, so a hit is served without touching serde again.
    :meth:`get_buffers` re-views a stored blob as read-only zero-copy
    arrays for in-process consumers (the benchmark, tests).
    """

    def __init__(self, max_entries: int = 256) -> None:
        if max_entries < 1:
            raise ValueError("cache needs at least one entry")
        self.max_entries = int(max_entries)
        self._store: "OrderedDict[str, bytes]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._store)

    def get(self, key: str) -> Optional[bytes]:
        """The canonical mesh bytes for ``key``, refreshing recency."""
        with self._lock:
            blob = self._store.get(key)
            if blob is None:
                self.misses += 1
                return None
            self._store.move_to_end(key)
            self.hits += 1
            return blob

    def get_buffers(self, key: str) -> Optional[serde.Buffers]:
        """Zero-copy read-only views over the cached mesh, or None."""
        blob = self.get(key)
        if blob is None:
            return None
        return serde.bytes_to_buffers(blob)

    def put(self, key: str, blob: bytes) -> None:
        with self._lock:
            self._store[key] = blob
            self._store.move_to_end(key)
            while len(self._store) > self.max_entries:
                self._store.popitem(last=False)
                self.evictions += 1

    def contains(self, key: str) -> bool:
        with self._lock:
            return key in self._store

    def nbytes(self) -> int:
        with self._lock:
            return sum(len(b) for b in self._store.values())


# ----------------------------------------------------------------------
# The daemon
# ----------------------------------------------------------------------
class _Pending:
    """One cache-missed request waiting for a dispatch slot."""

    __slots__ = ("key", "payload", "future")

    def __init__(self, key: str, payload: serde.Buffers,
                 future: "asyncio.Future[bytes]") -> None:
        self.key = key
        self.payload = payload
        self.future = future


class MeshService:
    """Asyncio meshing daemon: warm executor + batcher + mesh cache.

    ``address`` is anything :func:`parse_address` accepts; TCP port 0
    binds an ephemeral port (read the bound endpoint from
    :attr:`endpoint` after :meth:`start`).  ``backend`` is a registry
    name (``None`` = ``REPRO_BACKEND`` / ``local``); the processes
    backend gets a service-owned instance so the pool's lifetime is the
    daemon's, not the registry singleton's.

    ``work_fn``/``cost_fn`` default to the whole-request pipeline work
    item (:func:`repro.core.pipeline.mesh_workitem`); tests substitute
    module-level stand-ins to probe scheduling without meshing.
    """

    def __init__(
        self,
        address: str,
        *,
        backend: Optional[str] = None,
        n_ranks: int = 4,
        batch_window: float = 0.005,
        max_batch: int = 16,
        cache_entries: int = 256,
        work_fn: Optional[Callable] = None,
        cost_fn: Optional[Callable] = None,
    ) -> None:
        self.address = parse_address(address)
        canonical = executor.canonical_backend_name(
            executor.resolve_backend_name(backend))
        self.backend_name = canonical
        if canonical == "processes":
            # Service-owned pool: shutdown() must be able to stop the
            # workers without tearing down the shared registry instance.
            self._backend: executor.Backend = executor.ProcessesBackend()
        else:
            self._backend = executor.get_backend(canonical)
        self.n_ranks = int(n_ranks)
        self.batch_window = float(batch_window)
        self.max_batch = max(int(max_batch), 1)
        self.cache = MeshCache(cache_entries)
        self.counters = Counters()
        if work_fn is None or cost_fn is None:
            from ..core import pipeline as _pipeline

            work_fn = work_fn or _pipeline.mesh_workitem
            cost_fn = cost_fn or _pipeline.request_cost
        self._work_fn = work_fn
        self._cost_fn = cost_fn
        self._queue: "asyncio.Queue[Optional[_Pending]]" = asyncio.Queue()
        self._inflight: Dict[str, "asyncio.Future[bytes]"] = {}
        self._conns: Dict[int, "asyncio.Task"] = {}
        self._next_conn = 0
        self._server: Optional[asyncio.AbstractServer] = None
        self._batcher: Optional["asyncio.Task"] = None
        self._shutdown_task: Optional["asyncio.Task"] = None
        self._stopping = False
        self._started = False
        self._done_event: Optional[asyncio.Event] = None
        self._t_start = 0.0

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> None:
        """Bind the endpoint and start the batching scheduler."""
        if self._started:
            raise ServiceError("service already started")
        self._done_event = asyncio.Event()
        # Fork the worker pool BEFORE any connection fd exists: workers
        # forked mid-traffic would inherit open connection fds, and a
        # duplicated fd keeps the peer from seeing EOF until the worker
        # exits (also moves the fork cost out of the first request).
        warm = getattr(self._backend, "warm_pool", None)
        if warm is not None:
            await offload(warm, self.n_ranks)
        kind, where = self.address
        if kind == "unix":
            await offload(_remove_socket_file, where)
            self._server = await asyncio.start_unix_server(
                self._handle_connection, path=where)
        else:
            host, port = where
            self._server = await asyncio.start_server(
                self._handle_connection, host=host, port=port)
        # Workers respawned from here on fork with the listening socket
        # open; register its fd so they close it at startup instead of
        # keeping a duplicate accept() endpoint alive.
        exclude = getattr(self._backend, "exclude_fds_from_workers", None)
        if exclude is not None and self._server is not None:
            exclude([s.fileno() for s in self._server.sockets])
        self._batcher = asyncio.get_running_loop().create_task(
            self._batch_loop())
        self._started = True
        self._t_start = monotonic()

    @property
    def endpoint(self) -> str:
        """The connectable endpoint spec (ephemeral TCP port resolved)."""
        kind, where = self.address
        if kind == "unix":
            return f"unix:{where}"
        if self._server is not None and self._server.sockets:
            host, port = self._server.sockets[0].getsockname()[:2]
            return f"tcp:{host}:{port}"
        host, port = where
        return f"tcp:{host}:{port}"

    async def serve_forever(self) -> None:
        """Block until :meth:`shutdown` completes (from any trigger)."""
        if not self._started:
            await self.start()
        assert self._done_event is not None
        await self._done_event.wait()

    async def shutdown(self) -> None:
        """Stop accepting, fail pending work cleanly, stop the pool.

        Queued-but-undispatched requests fail with
        :class:`ServiceUnavailable`; an in-flight batch is aborted
        through the worker pool's epoch fence so its clients get an
        ``err`` frame promptly instead of waiting the batch out.
        Idempotent; concurrent calls await the first one.
        """
        if self._stopping:
            if self._done_event is not None:
                await self._done_event.wait()
            return
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Fail everything still waiting for a dispatch slot.
        drained: List[_Pending] = []
        while True:
            try:
                item = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            if item is not None:
                drained.append(item)
        self._queue.put_nowait(None)  # wake/stop the batcher
        for item in drained:
            if not item.future.done():
                item.future.set_exception(
                    ServiceUnavailable("service is shutting down"))
        # Abort the in-flight dispatch behind the pool's epoch fence.
        abort = getattr(self._backend, "abort", None)
        if abort is not None:
            abort("service is shutting down")
        if self._batcher is not None:
            await self._batcher
        # Stop the pool BEFORE draining connections: a worker that was
        # (re)forked while a connection was open holds a duplicate of
        # its fd, and the handler can't see the client's EOF until
        # every duplicate is closed.
        # The listening fd is closed now and its number is about to be
        # reusable — deregister it before any future pool respawn.
        exclude = getattr(self._backend, "exclude_fds_from_workers", None)
        if exclude is not None:
            exclude([])
        shutdown_pool = getattr(self._backend, "shutdown_pool", None)
        if shutdown_pool is not None:
            await offload(shutdown_pool)
        # Let connection handlers flush their final ok/err frames.
        live = [t for t in list(self._conns.values()) if not t.done()]
        if live:
            await asyncio.wait(live, timeout=10.0)
        kind, where = self.address
        if kind == "unix":
            await offload(_remove_socket_file, where)
        assert self._done_event is not None
        self._done_event.set()

    # -- stats ---------------------------------------------------------
    def stats(self) -> Dict[str, float]:
        """A plain scalar snapshot of the service counters."""
        snap = self.counters.snapshot()
        events = snap["events"]
        lat = snap["samples"].get("service.latency_seconds", [])
        sizes = snap["samples"].get("service.batch_size", [])
        requests = float(events.get("service.requests", 0))
        hits = float(events.get("service.cache_hits", 0))
        return {
            "uptime_s": monotonic() - self._t_start,
            "requests": requests,
            "cache_hits": hits,
            "hit_ratio": hits / requests if requests else 0.0,
            "dedup_joins": float(events.get("service.dedup_joins", 0)),
            "batches": float(events.get("service.batches", 0)),
            "batch_size_mean": (sum(sizes) / len(sizes)) if sizes else 0.0,
            "batch_size_max": max(sizes) if sizes else 0.0,
            "cache_entries": float(len(self.cache)),
            "cache_evictions": float(self.cache.evictions),
            "cache_nbytes": float(self.cache.nbytes()),
            "latency_p50_s": percentile(lat, 50.0),
            "latency_p99_s": percentile(lat, 99.0),
            "latency_mean_s": (sum(lat) / len(lat)) if lat else 0.0,
            "disconnects": float(events.get("service.disconnects", 0)),
            "errors": float(events.get("service.errors", 0)),
        }

    def _stats_buffers(self) -> serde.Buffers:
        return {k: np.asarray([v], dtype=np.float64)
                for k, v in self.stats().items()}

    # -- connection handling -------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        conn_id = self._next_conn
        self._next_conn += 1
        task = asyncio.current_task()
        if task is not None:
            self._conns[conn_id] = task
        try:
            while True:
                try:
                    kind, payload = await read_frame(reader)
                except (asyncio.IncompleteReadError, ConnectionError):
                    break  # client hung up between requests: normal
                except FrameError as exc:
                    await self._send(writer, "err", str(exc).encode())
                    break
                if not await self._serve_one(kind, payload, writer):
                    break
        except (ConnectionResetError, BrokenPipeError, OSError):
            # Client vanished mid-reply; the batch (if any) still ran
            # and populated the cache — only this socket is affected.
            self.counters.incr("service.disconnects")
        finally:
            self._conns.pop(conn_id, None)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _serve_one(self, kind: str, payload: bytes,
                         writer: asyncio.StreamWriter) -> bool:
        """Serve one frame; False ends the connection loop."""
        if kind == "mesh":
            await self._handle_mesh(payload, writer)
            return True
        if kind == "ping":
            await self._send(writer, "pong", b"")
            return True
        if kind == "stats":
            await self._send(writer, "stats",
                             serde.buffers_to_bytes(self._stats_buffers()))
            return True
        if kind == "shutdown":
            await self._send(writer, "bye", b"")
            self._shutdown_task = asyncio.get_running_loop().create_task(
                self.shutdown())
            return False
        self.counters.incr("service.errors")
        await self._send(writer, "err",
                         f"unknown request kind {kind!r}".encode())
        return True

    async def _handle_mesh(self, payload_bytes: bytes,
                           writer: asyncio.StreamWriter) -> None:
        t0 = monotonic()
        sink = self.counters
        sink.incr("service.requests")
        try:
            payload = serde.bytes_to_buffers(payload_bytes)
        except serde.SerdeError as exc:
            sink.incr("service.errors")
            await self._send(writer, "err", f"bad request: {exc}".encode())
            return
        key = serde.canonical_hash(payload)
        blob = self.cache.get(key)
        if blob is not None:
            sink.incr("service.cache_hits")
            sink.observe("service.latency_seconds", monotonic() - t0)
            await self._send(writer, "mesh-hit", blob)
            return
        future = self._inflight.get(key)
        if future is None:
            if self._stopping:
                sink.incr("service.errors")
                await self._send(writer, "err",
                                 b"service is shutting down")
                return
            future = asyncio.get_running_loop().create_future()
            self._inflight[key] = future
            future.add_done_callback(
                lambda _fut, _key=key: self._inflight.pop(_key, None))
            self._queue.put_nowait(_Pending(key, payload, future))
        else:
            # Identical request already queued/dispatching: join it
            # instead of meshing twice (single-flight).
            sink.incr("service.dedup_joins")
        try:
            blob = await future
        except (ServiceError, executor.ExecutorError) as exc:
            sink.incr("service.errors")
            await self._send(writer, "err", str(exc).encode())
            return
        sink.observe("service.latency_seconds", monotonic() - t0)
        await self._send(writer, "mesh-ok", blob)

    async def _send(self, writer: asyncio.StreamWriter, kind: str,
                    payload: bytes) -> None:
        writer.write(encode_frame(kind, payload))
        await writer.drain()

    # -- batching scheduler --------------------------------------------
    async def _batch_loop(self) -> None:
        """Collect misses for one batching window, dispatch, repeat."""
        while True:
            item = await self._queue.get()
            if item is None:
                return
            batch = [item]
            deadline = monotonic() + self.batch_window
            stop_after = False
            while len(batch) < self.max_batch:
                remaining = deadline - monotonic()
                if remaining <= 0.0:
                    break
                try:
                    nxt = await asyncio.wait_for(self._queue.get(),
                                                 timeout=remaining)
                except asyncio.TimeoutError:
                    break
                if nxt is None:
                    stop_after = True
                    break
                batch.append(nxt)
            await self._dispatch(batch)
            if stop_after:
                return

    async def _dispatch(self, batch: List[_Pending]) -> None:
        """One ``map_workitems`` window over the whole batch."""
        sink = self.counters
        if self._stopping:
            for item in batch:
                if not item.future.done():
                    item.future.set_exception(
                        ServiceUnavailable("service is shutting down"))
            return
        sink.incr("service.batches")
        sink.observe("service.batch_size", float(len(batch)))
        payloads = [item.payload for item in batch]
        costs = [self._cost_fn(p) for p in payloads]

        def run() -> List[serde.Buffers]:
            # The dispatch thread installs the service sink so executor
            # and worker counters merge into the same report the stats
            # frame serves.
            with counters_mod.use_counters(sink):
                with sink.phase("service.dispatch"):
                    return self._backend.map_workitems(
                        self._work_fn, payloads, costs=costs,
                        n_ranks=self.n_ranks)

        try:
            results = await offload(run)
        except BaseException as exc:  # noqa: BLE001 - forwarded to clients
            err = exc if isinstance(exc, (ServiceError,
                                          executor.ExecutorError)) \
                else ServiceError(f"batch dispatch failed: {exc}")
            for item in batch:
                if not item.future.done():
                    item.future.set_exception(err)
            return
        for item, result in zip(batch, results):
            blob = serde.buffers_to_bytes(result)
            self.cache.put(item.key, blob)
            if not item.future.done():
                item.future.set_result(blob)


# ----------------------------------------------------------------------
# Embedding helper: run the daemon on a private loop in a thread
# ----------------------------------------------------------------------
class ServiceThread:
    """Own a :class:`MeshService` on a daemon thread's event loop.

    The benchmark, the soak tests and any embedding application use
    this to run the daemon next to synchronous client code:

    >>> st = ServiceThread(MeshService("tcp:127.0.0.1:0"))
    >>> endpoint = st.start()          # connectable spec
    >>> ...                            # ServiceClient(endpoint) traffic
    >>> st.stop()                      # graceful shutdown, thread joined
    """

    def __init__(self, service: MeshService) -> None:
        self.service = service
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    def start(self, timeout: float = 30.0) -> str:
        """Start the daemon; returns the connectable endpoint spec."""
        if self._thread is not None:
            raise ServiceError("service thread already started")
        self._thread = threading.Thread(target=self._run,
                                        name="repro-mesh-service",
                                        daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout):
            raise ServiceError("service failed to start in time")
        if self._startup_error is not None:
            raise self._startup_error
        return self.service.endpoint

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(self.service.start())
        except BaseException as exc:  # noqa: BLE001 - surfaced in start()
            self._startup_error = exc
            self._ready.set()
            loop.close()
            return
        self._loop = loop
        self._ready.set()
        try:
            loop.run_until_complete(self.service.serve_forever())
        finally:
            loop.close()

    def stop(self, timeout: float = 60.0) -> None:
        """Graceful shutdown; joins the loop thread (idempotent)."""
        if self._thread is None or self._loop is None:
            return
        if self._thread.is_alive():
            fut = asyncio.run_coroutine_threadsafe(
                self.service.shutdown(), self._loop)
            fut.result(timeout=timeout)
        self._thread.join(timeout=timeout)
        if self._thread.is_alive():
            raise ServiceError("service thread did not stop")
        self._thread = None
        self._loop = None
