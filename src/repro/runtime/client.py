"""Synchronous client for the meshing service daemon.

:class:`ServiceClient` speaks the length-prefixed frame protocol of
:mod:`repro.runtime.service` over a plain blocking socket — no asyncio
on the consumer side, so CLI invocations, benchmarks and test threads
can all talk to the daemon with ordinary calls:

>>> with ServiceClient("unix:/run/mesh.sock") as client:
...     reply = client.submit(pslg, config)
...     mesh, was_cached = reply.mesh, reply.cached

One request is in flight per connection at a time (submit blocks until
the reply frame arrives); open one client per thread for concurrency.
"""

from __future__ import annotations

import socket
import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from . import serde
from .counters import monotonic
from .service import (
    FRAME_HEAD,
    FRAME_MAGIC,
    MAX_FRAME_BYTES,
    FrameError,
    ServiceError,
    encode_frame,
    parse_address,
)

__all__ = ["MeshReply", "ServiceClient", "recv_exact", "read_frame_blocking"]


def recv_exact(sock: socket.socket, n: int) -> bytes:
    """Read exactly ``n`` bytes; raises on EOF mid-message."""
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionError(
                f"connection closed with {remaining} bytes outstanding")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame_blocking(sock: socket.socket) -> Tuple[str, bytes]:
    """Blocking twin of :func:`repro.runtime.service.read_frame`."""
    head = recv_exact(sock, FRAME_HEAD.size)
    magic, klen, plen = FRAME_HEAD.unpack(head)
    if magic != FRAME_MAGIC:
        raise FrameError(f"bad frame magic {magic!r} (want {FRAME_MAGIC!r})")
    if plen > MAX_FRAME_BYTES:
        raise FrameError(f"frame payload of {plen} bytes over cap")
    kind = recv_exact(sock, klen).decode("ascii")
    payload = recv_exact(sock, plen) if plen else b""
    return kind, payload


@dataclass
class MeshReply:
    """One served mesh: the result plus how it was produced."""

    mesh: object  #: :class:`repro.delaunay.mesh.TriMesh`
    cached: bool  #: True when the reply came out of the content cache
    key: str  #: canonical request hash (the cache key)
    elapsed_s: float  #: client-observed round-trip seconds
    raw: bytes  #: canonical mesh bytes exactly as they crossed the wire


class ServiceClient:
    """Blocking socket client for a :class:`MeshService` daemon."""

    def __init__(self, address: str, *, timeout: Optional[float] = 120.0,
                 connect_retries: int = 0, retry_delay: float = 0.1) -> None:
        self.address = parse_address(address)
        self.timeout = timeout
        self._sock: Optional[socket.socket] = None
        self._connect(connect_retries, retry_delay)

    def _connect(self, retries: int, delay: float) -> None:
        kind, where = self.address
        last: Optional[Exception] = None
        for _attempt in range(retries + 1):
            try:
                if kind == "unix":
                    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                    sock.settimeout(self.timeout)
                    sock.connect(where)
                else:
                    host, port = where
                    sock = socket.create_connection(
                        (host, port), timeout=self.timeout)
                self._sock = sock
                return
            except OSError as exc:
                last = exc
                time.sleep(delay)
        raise ServiceError(f"cannot connect to {self.address}: {last}")

    # -- plumbing ------------------------------------------------------
    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    @property
    def sock(self) -> socket.socket:
        if self._sock is None:
            raise ServiceError("client is closed")
        return self._sock

    def request(self, kind: str, payload: bytes = b"") -> Tuple[str, bytes]:
        """Send one frame and block for the reply frame."""
        self.sock.sendall(encode_frame(kind, payload))
        return read_frame_blocking(self.sock)

    # -- protocol verbs ------------------------------------------------
    def ping(self) -> float:
        """Round-trip a ping; returns the RTT in seconds."""
        t0 = monotonic()
        kind, _payload = self.request("ping")
        if kind != "pong":
            raise ServiceError(f"unexpected reply to ping: {kind!r}")
        return monotonic() - t0

    def submit_packed(self, payload: serde.Buffers) -> Tuple[str, bytes]:
        """Submit an already-packed mesh request; returns (kind, bytes).

        The reply kind is ``mesh-ok`` (freshly meshed), ``mesh-hit``
        (served from the content cache) or raises :class:`ServiceError`
        with the daemon's message for an ``err`` frame.
        """
        kind, blob = self.request("mesh", serde.buffers_to_bytes(payload))
        if kind == "err":
            raise ServiceError(blob.decode("utf-8", "replace"))
        if kind not in ("mesh-ok", "mesh-hit"):
            raise ServiceError(f"unexpected reply kind {kind!r}")
        return kind, blob

    def submit(self, pslg, config=None) -> MeshReply:
        """Mesh one (PSLG, MeshConfig) request on the daemon."""
        from ..core.pipeline import pack_mesh_request

        payload = pack_mesh_request(pslg, config)
        key = serde.canonical_hash(payload)
        t0 = monotonic()
        kind, blob = self.submit_packed(payload)
        elapsed = monotonic() - t0
        mesh = serde.unpack_mesh(serde.bytes_to_buffers(blob))
        return MeshReply(mesh=mesh, cached=(kind == "mesh-hit"), key=key,
                         elapsed_s=elapsed, raw=blob)

    def stats(self) -> Dict[str, float]:
        """The daemon's counter snapshot as plain floats."""
        kind, blob = self.request("stats")
        if kind != "stats":
            raise ServiceError(f"unexpected reply to stats: {kind!r}")
        buffers = serde.bytes_to_buffers(blob)
        return {key: float(buffers[key][0]) for key in sorted(buffers)}

    def shutdown_server(self) -> None:
        """Ask the daemon to shut down gracefully (waits for 'bye')."""
        kind, _payload = self.request("shutdown")
        if kind != "bye":
            raise ServiceError(f"unexpected reply to shutdown: {kind!r}")
        self.close()
