"""Pluggable execution backends: submit work items, collect results.

The paper's headline claim is wall-clock speedup from data decomposition
— independent subdomains refined by independent workers.  This module is
the seam that decides *what a worker is*:

``serial``  (alias ``local``)
    Run every item in the calling thread.  The reference backend: zero
    scheduling, zero transport, bit-exact baseline.

``threads``
    The SPMD threads runtime (:func:`repro.runtime.comm.run_spmd` +
    :class:`repro.runtime.loadbalance.DistributedWorker` + RMA
    :class:`~repro.runtime.rma.Window`): models the paper's MPI ranks,
    work stealing and termination detection faithfully — but the GIL
    serializes pure-Python refinement, so it exercises the *algorithm*,
    not the hardware.

``processes``
    True ``multiprocessing`` workers.  Two dispatch modes:

    * **warm pool** (default): a :class:`WorkerPool` of persistent
      workers forked once and reused across ``map_workitems`` calls;
      demand-driven largest-first dispatch with at most one in-flight
      item per worker, so a crashed worker maps to exactly one
      requeueable item (respawn + requeue, bounded attempts); idle
      workers are reaped after a TTL.  Disable with ``REPRO_POOL=0``.
    * **fork-per-call** (legacy): largest-first static distribution
      (LPT) plus steal-on-idle through a shared :class:`LoadBoard`,
      workers forked and torn down every call.

    Payloads and results cross the process boundary only as flat numpy
    buffer dicts (:mod:`repro.runtime.serde`), never as pickled Python
    object graphs; dicts of ≥ 64 KiB travel through refcounted
    ``multiprocessing.shared_memory`` segments in *both* directions
    (the receiver maps them zero-copy and unlinks on attach); per-item
    profiling counters are snapshotted and merged back into the
    parent's ambient sink.

Every backend implements the :class:`Backend` protocol —
``map_workitems(fn, payloads, costs, n_ranks) -> results`` (in payload
order) and ``stream_workitems(fn, n_ranks) -> session`` (submit items
one at a time as a producer discovers them; the warm pool starts
refining the first subdomain while decomposition is still splitting the
rest) — and registers itself in a name registry the CLI derives its
``--backend`` choices from.

The runtime race sanitizer (:mod:`repro.lint.tsan`) instruments *shared
memory*; process workers share nothing mutable, so there is nothing for
it to instrument and ``processes`` + sanitizer fails fast with a clear
error instead of silently reporting a clean-but-vacuous run.
"""

from __future__ import annotations

import atexit
import bisect
import os
import queue as queue_mod
import traceback
import weakref
from typing import (Any, Callable, Dict, List, Optional, Protocol, Sequence,
                    Tuple)

from ..lint import tsan
from . import counters as counters_mod
from . import serde
from .counters import monotonic, phase
from .serde import is_buffers

__all__ = [
    "Backend",
    "StreamSession",
    "ExecutorError",
    "LoadBoard",
    "SerialBackend",
    "ThreadsBackend",
    "ProcessesBackend",
    "WorkerPool",
    "PoolStream",
    "register_backend",
    "get_backend",
    "available_backends",
    "canonical_backend_name",
    "resolve_backend_name",
]

#: environment override consulted when a caller passes ``backend=None``
#: (used by CI to drive the whole test pyramid through one backend).
BACKEND_ENV = "REPRO_BACKEND"

#: ``REPRO_POOL=0`` disables the persistent worker pool (fork-per-call).
POOL_ENV = "REPRO_POOL"

#: idle-worker time-to-live override, seconds (``REPRO_POOL_TTL``).
POOL_TTL_ENV = "REPRO_POOL_TTL"

#: default seconds an idle pool worker survives before being reaped.
DEFAULT_POOL_TTL = 300.0


class ExecutorError(RuntimeError):
    """A backend could not run the submitted work."""


class StreamSession(Protocol):
    """An open streaming dispatch: submit items as they are produced.

    ``submit`` returns the item's index; ``results`` blocks until every
    submitted item finished and returns the results in submission
    order.  A session is single-use: ``results`` closes it.
    """

    def submit(self, payload: Any, *, cost: float = 1.0,
               eager: bool = True) -> int: ...

    def results(self) -> List[Any]: ...


class Backend(Protocol):
    """The executor contract every backend satisfies.

    ``map_workitems`` applies a module-level function to every payload
    and returns the results *in payload order* regardless of which
    worker processed what.  ``costs`` (optional, same length) drive
    largest-first scheduling and stealing on the parallel backends.
    ``stream_workitems`` opens a :class:`StreamSession` for producers
    that discover work incrementally.
    """

    #: registry name (canonical).
    name: str
    #: whether ``n_ranks`` changes anything.
    parallel: bool
    #: whether the runtime race sanitizer can instrument this backend.
    supports_sanitizer: bool

    def map_workitems(
        self,
        fn: Callable[[Any], Any],
        payloads: Sequence[Any],
        *,
        costs: Optional[Sequence[float]] = None,
        n_ranks: int = 1,
    ) -> List[Any]: ...

    def stream_workitems(
        self,
        fn: Callable[[Any], Any],
        *,
        n_ranks: int = 1,
    ) -> StreamSession: ...


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, "Backend"] = {}
_ALIASES: Dict[str, str] = {}


def register_backend(backend: "Backend",
                     aliases: Sequence[str] = ()) -> "Backend":
    """Register a backend instance under its name (plus aliases)."""
    _REGISTRY[backend.name] = backend
    for alias in aliases:
        _ALIASES[alias] = backend.name
    return backend


def canonical_backend_name(name: str) -> str:
    """Resolve aliases (``local`` -> ``serial``); raise on unknown."""
    resolved = _ALIASES.get(name, name)
    if resolved not in _REGISTRY:
        raise ValueError(
            f"unknown backend: {name} (available: "
            f"{', '.join(available_backends())})"
        )
    return resolved


def get_backend(name: str) -> "Backend":
    """Look up a backend by registry name or alias."""
    return _REGISTRY[canonical_backend_name(name)]


def available_backends() -> List[str]:
    """Every accepted ``--backend`` value (canonical names + aliases)."""
    return sorted(set(_REGISTRY) | set(_ALIASES))


def resolve_backend_name(name: Optional[str], *,
                         default: str = "local") -> str:
    """Pick the backend name: explicit arg > ``REPRO_BACKEND`` > default."""
    if name is not None:
        return name
    return os.environ.get(BACKEND_ENV) or default


# ----------------------------------------------------------------------
# Shared validation
# ----------------------------------------------------------------------
def _check_ranks(n_ranks: int) -> int:
    if n_ranks < 1:
        raise ExecutorError(f"need at least one rank, got {n_ranks}")
    return int(n_ranks)


def _check_portable_fn(fn: Callable) -> None:
    """Process workers resolve ``fn`` by module path — reject closures."""
    qualname = getattr(fn, "__qualname__", "")
    if "<locals>" in qualname or not getattr(fn, "__module__", None):
        raise ExecutorError(
            f"work function {qualname or fn!r} must be a module-level "
            "function for the processes backend (closures cannot cross "
            "the process boundary); use serial/threads or lift it to "
            "module scope"
        )


def _check_buffer_payload(index: int, payload: Any) -> None:
    if not is_buffers(payload):
        raise ExecutorError(
            f"payload {index} is {type(payload).__name__}, not a flat "
            "dict[str, ndarray] buffer dict — pack it with "
            "repro.runtime.serde before submitting to the processes "
            "backend (no pickled object graphs on the hot path)"
        )


def _check_buffer_payloads(payloads: Sequence[Any]) -> None:
    for i, p in enumerate(payloads):
        _check_buffer_payload(i, p)


# ----------------------------------------------------------------------
# Buffered streaming adapter (barrier backends)
# ----------------------------------------------------------------------
class _BufferedStream:
    """Collect-then-run :class:`StreamSession` for barrier backends.

    ``serial``/``threads`` (and the legacy fork-per-call processes mode)
    have no pool to feed incrementally, so streamed submission simply
    accumulates and ``results`` runs one ``map_workitems`` — trivially
    byte-identical to the barriered path.
    """

    def __init__(self, backend: "Backend", fn: Callable,
                 n_ranks: int) -> None:
        self._backend = backend
        self._fn = fn
        self._n_ranks = n_ranks
        self._payloads: List[Any] = []
        self._costs: List[float] = []
        self._closed = False

    def submit(self, payload: Any, *, cost: float = 1.0,
               eager: bool = True) -> int:
        if self._closed:
            raise ExecutorError("streaming session already closed")
        self._payloads.append(payload)
        self._costs.append(float(cost))
        return len(self._payloads) - 1

    def results(self) -> List[Any]:
        if self._closed:
            raise ExecutorError("streaming session already closed")
        self._closed = True
        if not self._payloads:
            return []
        return self._backend.map_workitems(
            self._fn, self._payloads, costs=self._costs,
            n_ranks=self._n_ranks)


# ----------------------------------------------------------------------
# serial
# ----------------------------------------------------------------------
class SerialBackend:
    """Run every item in the calling thread, in submission order."""

    name = "serial"
    parallel = False
    supports_sanitizer = True

    def map_workitems(self, fn, payloads, *, costs=None, n_ranks=1):
        with phase(f"executor.{self.name}"):
            return [fn(p) for p in payloads]

    def stream_workitems(self, fn, *, n_ranks=1):
        return _BufferedStream(self, fn, _check_ranks(n_ranks))


# ----------------------------------------------------------------------
# threads
# ----------------------------------------------------------------------
class ThreadsBackend:
    """SPMD threads runtime with RMA-window work stealing.

    Faithful to the paper's runtime model (ranks, windows, stealing,
    atomic termination counting) and fully instrumentable by the race
    sanitizer — but GIL-bound for pure-Python work.
    """

    name = "threads"
    parallel = True
    supports_sanitizer = True

    def map_workitems(self, fn, payloads, *, costs=None, n_ranks=1):
        from .comm import run_spmd
        from .loadbalance import DistributedWorker, WorkItem
        from .rma import Window

        n_ranks = _check_ranks(n_ranks)
        if costs is None:
            costs = [1.0] * len(payloads)
        load_w = Window(n_ranks)
        counter_w = Window(1)
        counter_w.put(float(len(payloads)), 0)
        items = [
            WorkItem(cost=max(float(c), 1e-9), payload=(i, p))
            for i, (p, c) in enumerate(zip(payloads, costs))
        ]

        def process(item: WorkItem):
            idx, payload = item.payload
            with phase(f"executor.{self.name}.item"):
                return (idx, fn(payload)), []

        def spmd(comm):
            worker = DistributedWorker(comm, load_w, counter_w, process,
                                       steal_threshold=1.0)
            if comm.rank == 0:
                worker.seed(items)
            comm.barrier()
            return worker.run()

        with phase(f"executor.{self.name}"):
            per_rank = run_spmd(n_ranks, spmd)
        out: List[Any] = [None] * len(payloads)
        seen = [False] * len(payloads)
        for rank_results in per_rank:
            for idx, result in rank_results:
                out[idx] = result
                seen[idx] = True
        missing = [i for i, ok in enumerate(seen) if not ok]
        if missing:
            raise ExecutorError(f"work items {missing} were never processed")
        return out

    def stream_workitems(self, fn, *, n_ranks=1):
        return _BufferedStream(self, fn, _check_ranks(n_ranks))


# ----------------------------------------------------------------------
# processes: legacy fork-per-call scheduling (LoadBoard + LPT)
# ----------------------------------------------------------------------
class LoadBoard:
    """Shared claim board: largest-first assignment + steal-on-idle.

    One shared int array marks each item's claiming worker (-1 =
    unclaimed); one shared float array publishes every worker's
    remaining assigned load (the paper's RMA load-estimate window,
    realised in shared memory).  A worker claims its *own* items largest
    first; when its assignment drains it picks the most-loaded victim
    and claims that victim's largest unclaimed item.  All transitions
    happen under one shared lock, so an item is processed exactly once
    no matter how claims and steals interleave.
    """

    def __init__(self, ctx, costs: Sequence[float],
                 assignment: Sequence[Sequence[int]]) -> None:
        self._costs = [float(c) for c in costs]
        # Per-worker items, largest cost first.
        self._assignment = [
            sorted(items, key=lambda i: (-self._costs[i], i))
            for items in assignment
        ]
        self._owner_of = {}
        for w, items in enumerate(self._assignment):
            for i in items:
                self._owner_of[i] = w
        self._claims = ctx.Array("i", [-1] * max(len(costs), 1), lock=False)
        self._loads = ctx.Array("d", [
            sum(self._costs[i] for i in items) for items in self._assignment
        ] or [0.0], lock=False)
        self._lock = ctx.Lock()

    def _take(self, item: int, worker: int) -> None:
        self._claims[item] = worker
        owner = self._owner_of[item]
        # Clamp at zero: claim order differs from the summation order
        # that built the load, so plain float subtraction can leave a
        # -1e-16 residue on the last item; remaining load is a
        # non-negative quantity by definition.
        self._loads[owner] = max(self._loads[owner] - self._costs[item], 0.0)

    def claim(self, worker: int) -> Optional[tuple]:
        """Claim the next item for ``worker``: ``(item, stolen)`` or None.

        Own assignment first (largest-first); then steal the largest
        unclaimed item of the worker with the most remaining load.
        """
        with self._lock:
            for i in self._assignment[worker]:
                if self._claims[i] < 0:
                    self._take(i, worker)
                    return (i, False)
            victim = -1
            victim_load = 0.0
            for w in range(len(self._assignment)):
                if w == worker:
                    continue
                if self._loads[w] > victim_load:
                    victim, victim_load = w, self._loads[w]
            if victim >= 0:
                for i in self._assignment[victim]:
                    if self._claims[i] < 0:
                        self._take(i, worker)
                        return (i, True)
            # Fallback sweep: loads can only over-estimate remaining
            # work, so an unclaimed item anywhere is still claimable.
            for i in range(len(self._claims)):
                if self._claims[i] < 0:
                    self._take(i, worker)
                    return (i, self._owner_of[i] != worker)
            return None

    def remaining_loads(self) -> List[float]:
        with self._lock:
            return [float(x) for x in self._loads]


def lpt_assignment(costs: Sequence[float], n_workers: int) -> List[List[int]]:
    """Largest-processing-time-first static distribution.

    Items sorted by descending cost, each placed on the least-loaded
    worker — the classic 4/3-approximation, matching the paper's
    "subdomain estimated to need the most time is meshed first".
    """
    order = sorted(range(len(costs)), key=lambda i: (-float(costs[i]), i))
    loads = [0.0] * n_workers
    out: List[List[int]] = [[] for _ in range(n_workers)]
    for i in order:
        w = min(range(n_workers), key=lambda r: (loads[r], r))
        out[w].append(i)
        loads[w] += float(costs[i])
    return out


def _process_worker(rank: int, fn, payloads, board: LoadBoard,
                    result_q, profile: bool) -> None:
    """Fork-per-call worker main loop: claim, process, ship buffers back.

    Results at or above :data:`repro.runtime.serde.SHM_MIN_BYTES` go
    through a ``multiprocessing.shared_memory`` segment (one C-speed
    copy, no pickling of the arrays); only the segment name and layout
    cross the queue.  Small results ship inline — the pickle is cheaper
    than a segment round trip.
    """
    try:
        sink = counters_mod.Counters() if profile else None
        processed = 0
        steals = 0
        with counters_mod.use_counters(sink) if profile else _null_cm():
            while True:
                got = board.claim(rank)
                if got is None:
                    break
                idx, stolen = got
                with phase("executor.processes.item"):
                    result = fn(payloads[idx])
                if not is_buffers(result):
                    raise ExecutorError(
                        f"work function {fn.__qualname__} returned "
                        f"{type(result).__name__} for item {idx}; process "
                        "workers must return flat serde buffer dicts"
                    )
                if serde.buffers_nbytes(result) >= serde.SHM_MIN_BYTES:
                    try:
                        name, meta = serde.buffers_to_shm(result)
                        result_q.put(("shm", idx, name, meta))
                    except OSError:
                        # No usable /dev/shm (tiny containers): fall
                        # back to the inline path rather than fail.
                        result_q.put(("ok", idx, result))
                else:
                    result_q.put(("ok", idx, result))
                processed += 1
                steals += int(stolen)
        snapshot = sink.snapshot() if sink is not None else None
        result_q.put(("done", rank, processed, steals, snapshot))
    except BaseException:  # noqa: BLE001 - shipped to the parent
        result_q.put(("err", rank, traceback.format_exc()))


class _null_cm:
    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


# ----------------------------------------------------------------------
# processes: persistent worker pool
# ----------------------------------------------------------------------
def _resolve_portable_fn(module: str, qualname: str) -> Callable:
    """Re-import a module-level function in a pool worker.

    ``_check_portable_fn`` guarantees the path resolves: no closures,
    non-empty module.  Walking the qualname supports functions nested
    inside classes (staticmethods).
    """
    import importlib

    obj: Any = importlib.import_module(module)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    return obj


def _pool_worker_main(rank: int, inbox, result_q,
                      close_fds: Sequence[int] = ()) -> None:
    """Persistent pool worker: serve tasks until told to stop.

    Protocol (pipe in, queue out)::

        ("task", epoch, idx, fn_module, fn_qualname, wire, profile)
        ("stop",)
        -> ("ok", rank, epoch, idx, result_wire, snapshot, seconds, nbytes)
        -> ("item_err", rank, epoch, idx, traceback_text)

    One task is in flight per worker at any time, so the parent can map
    a dead worker to exactly one requeueable item.  A work function
    raising is an *item* error — reported and survived, the worker
    keeps serving.  Both payloads and results travel as serde wire
    envelopes (inline or shared-memory, by size).

    ``close_fds`` names parent fds this fork must not keep — above all
    a daemon's listening socket: a worker respawned *after* the socket
    was bound inherits its fd, and the duplicate would keep the
    endpoint half-alive after the daemon exits.
    """
    for fd in close_fds:
        try:
            os.close(fd)
        except OSError:
            pass  # already gone in this fork; nothing inherited
    fn_cache: Dict[tuple, Callable] = {}
    while True:
        try:
            msg = inbox.recv()
        except (EOFError, OSError):
            break  # parent went away; nothing left to serve
        if msg[0] == "stop":
            break
        _, epoch, idx, fn_mod, fn_qual, wire, profile = msg
        t0 = monotonic()
        try:
            key = (fn_mod, fn_qual)
            fn = fn_cache.get(key)
            if fn is None:
                fn = fn_cache[key] = _resolve_portable_fn(fn_mod, fn_qual)
            payload = serde.wire_to_buffers(wire)
            sink = counters_mod.Counters() if profile else None
            with counters_mod.use_counters(sink) if profile else _null_cm():
                with phase("executor.processes.item"):
                    result = fn(payload)
                if not is_buffers(result):
                    raise ExecutorError(
                        f"work function {fn_qual} returned "
                        f"{type(result).__name__} for item {idx}; process "
                        "workers must return flat serde buffer dicts"
                    )
                nbytes = (serde.buffers_nbytes(payload)
                          + serde.buffers_nbytes(result))
                out_wire = serde.buffers_to_wire(result)
            try:
                snapshot = sink.snapshot() if sink is not None else None
                result_q.put(("ok", rank, epoch, idx, out_wire, snapshot,
                              monotonic() - t0, nbytes))
            except BaseException:
                # The envelope never made it onto the queue: free its
                # shm segment before reporting, or it outlives us.
                serde.discard_wire(out_wire)
                raise
        except BaseException:  # noqa: BLE001 - shipped to the parent
            result_q.put(("item_err", rank, epoch, idx,
                          traceback.format_exc()))


class _PoolTask:
    __slots__ = ("idx", "payload", "cost", "attempts", "wire")

    def __init__(self, idx: int, payload: Any, cost: float) -> None:
        self.idx = idx
        self.payload = payload
        self.cost = max(float(cost), 1e-9)
        #: dispatch attempts so far (== worker deaths survived + 1
        #: while in flight); bounded by :attr:`WorkerPool.max_attempts`.
        self.attempts = 0
        #: the wire envelope of the *current* dispatch, kept so an
        #: undelivered shm payload can be freed if the worker dies.
        self.wire = None


class _PoolWorkerHandle:
    __slots__ = ("rank", "proc", "conn", "task", "idle_since")

    def __init__(self, rank, proc, conn) -> None:
        self.rank = rank
        self.proc = proc
        self.conn = conn
        #: the in-flight :class:`_PoolTask`, or None when idle.
        self.task = None
        self.idle_since = monotonic()


class WorkerPool:
    """Persistent process workers, forked once and reused across calls.

    Lifecycle:

    * **fork-once** — workers are spawned lazily, up to the rank count
      of the calls that need them, and survive between calls (the fork
      + interpreter warm-up is paid once, not per ``map_workitems``);
    * **TTL reap** — a worker idle longer than ``ttl`` seconds is
      stopped at the next call boundary (big runs keep their fleet,
      an abandoned pool shrinks to nothing);
    * **respawn + requeue** — each worker holds at most one in-flight
      item, so a dead worker (killed, OOM) maps to exactly one item:
      the parent forks a replacement and requeues the item, up to
      :attr:`max_attempts` dispatches before giving up with an
      :class:`ExecutorError` naming the item;
    * **epoch fencing** — every dispatch carries the pool's call epoch;
      results from an aborted call are recognised as stale and their
      shm segments freed instead of corrupting the next call.

    One pool serves one open :class:`PoolStream` at a time (the
    single-parent dispatch model needs no cross-call interleaving).
    """

    #: max dispatches of one item before the pool gives up on it.
    max_attempts = 3

    def __init__(self, ctx, ttl: float = DEFAULT_POOL_TTL) -> None:
        self._ctx = ctx
        self.ttl = float(ttl)
        self._result_q = ctx.Queue()
        self._workers: Dict[int, _PoolWorkerHandle] = {}
        self._next_rank = 0
        self._epoch = 0
        self._call: Optional["PoolStream"] = None
        self.closed = False
        self.stats = {"forks": 0, "respawns": 0, "reaped": 0, "calls": 0}
        #: parent fds every (re)spawned worker closes at startup —
        #: daemons register their listening sockets here so a worker
        #: forked mid-request never inherits them.
        self.exclude_fds: Tuple[int, ...] = ()

    # -- worker lifecycle ----------------------------------------------
    def n_workers(self) -> int:
        return len(self._workers)

    def _spawn(self) -> _PoolWorkerHandle:
        recv, send = self._ctx.Pipe(duplex=False)
        rank = self._next_rank
        self._next_rank += 1
        proc = self._ctx.Process(
            target=_pool_worker_main,
            args=(rank, recv, self._result_q, self.exclude_fds),
            daemon=True, name=f"repro-pool-{rank}")
        proc.start()
        recv.close()  # the parent keeps only the send end
        handle = _PoolWorkerHandle(rank, proc, send)
        self._workers[rank] = handle
        self.stats["forks"] += 1
        return handle

    def _retire(self, handle: _PoolWorkerHandle) -> None:
        """Stop one worker (idle or already dead) and forget it."""
        try:
            handle.conn.send(("stop",))
        except (OSError, BrokenPipeError, ValueError):
            pass  # already dead or pipe torn down
        try:
            handle.conn.close()
        except OSError:
            pass
        handle.proc.join(timeout=5.0)
        if handle.proc.is_alive():
            handle.proc.terminate()
            handle.proc.join(timeout=5.0)
        self._workers.pop(handle.rank, None)

    def reap_idle(self) -> None:
        """Retire workers idle longer than the TTL (call-boundary hook)."""
        now = monotonic()
        for rank in sorted(self._workers):
            handle = self._workers[rank]
            if handle.task is None and now - handle.idle_since > self.ttl:
                self._retire(handle)
                self.stats["reaped"] += 1

    # -- stale-result hygiene ------------------------------------------
    def _handle_stale(self, msg) -> None:
        """Free a result from an aborted epoch (shm wire, idle marking)."""
        if msg[0] == "ok":
            serde.discard_wire(msg[4])

    def drain_stale(self) -> None:
        """Discard results of aborted calls still sitting in the queue."""
        while True:
            try:
                msg = self._result_q.get_nowait()
            except (queue_mod.Empty, OSError, ValueError):
                return
            self._handle_stale(msg)

    def abort_call(self, reason: str = "aborted") -> bool:
        """Request abort of the open streaming session, if any.

        Thread-safe entry point for an external controller (the meshing
        service's shutdown path): the open :class:`PoolStream` notices
        the flag at its next pump tick, quiesces in-flight items behind
        the epoch fence, and raises :class:`ExecutorError` out of the
        blocked ``results()`` call.  Returns whether a session was open.
        """
        call = self._call
        if call is None:
            return False
        call.request_abort(reason)
        return True

    def shutdown(self) -> None:
        """Stop every worker and close the pool (idempotent)."""
        if self.closed:
            return
        self.drain_stale()
        for rank in sorted(list(self._workers)):
            self._retire(self._workers[rank])
        self.drain_stale()
        self.closed = True
        self._result_q.close()
        self._result_q.join_thread()


#: every live pool, for a best-effort clean stop at interpreter exit
#: (daemon workers would die anyway; this lets them exit their loop).
_POOLS: "weakref.WeakSet[WorkerPool]" = weakref.WeakSet()


def _shutdown_all_pools() -> None:
    for pool in list(_POOLS):
        try:
            pool.shutdown()
        except Exception:
            pass


atexit.register(_shutdown_all_pools)


class PoolStream:
    """One open dispatch session against a :class:`WorkerPool`.

    Implements :class:`StreamSession`: the pipeline submits subdomains
    as ``decouple`` produces them and the pool starts refining
    immediately; ``map_workitems`` is the same session driven with
    ``eager=False`` (queue everything, then dispatch globally
    largest-first — LPT-like).  Dispatch is demand-driven: pending
    items are kept largest-cost-first and handed to whichever worker
    frees up, which subsumes steal-on-idle without shared state.
    """

    def __init__(self, pool: WorkerPool, fn: Callable, n_ranks: int,
                 sink, idle_timeout: float) -> None:
        if pool.closed:
            raise ExecutorError("worker pool is shut down")
        if pool._call is not None:
            raise ExecutorError(
                "worker pool already has an open streaming session — "
                "collect results() before starting another dispatch"
            )
        _check_portable_fn(fn)
        pool._epoch += 1
        pool._call = self
        pool.stats["calls"] += 1
        pool.drain_stale()
        pool.reap_idle()
        self._pool = pool
        self._epoch = pool._epoch
        self._fn_mod = fn.__module__
        self._fn_qual = fn.__qualname__
        self._n_ranks = _check_ranks(n_ranks)
        self._sink = sink
        self._idle_timeout = float(idle_timeout)
        self._tasks: List[_PoolTask] = []
        #: undispatched tasks as (-cost, idx, task), kept sorted so
        #: index 0 is always the largest remaining item.
        self._pending: List[tuple] = []
        self._out: List[Any] = []
        self._done = 0
        self._error: Optional[BaseException] = None
        self._closed = False
        #: abort reason requested by another thread (GIL-atomic write);
        #: honoured at the next pump tick / results() iteration.
        self._abort_reason: Optional[str] = None

    # -- public API ----------------------------------------------------
    def request_abort(self, reason: str = "aborted") -> None:
        """Ask the dispatching thread to abandon this session.

        Safe to call from any thread while ``results()`` blocks: the
        session fails with :class:`ExecutorError`, in-flight items are
        quiesced behind the pool's epoch fence (stale results discarded,
        their shm wires freed) and the pool stays reusable.
        """
        self._abort_reason = reason

    def _check_abort(self) -> None:
        reason = self._abort_reason
        if reason is not None and self._error is None:
            self._fail(ExecutorError(f"dispatch aborted: {reason}"))

    def submit(self, payload, *, cost: float = 1.0,
               eager: bool = True) -> int:
        """Queue one item; with ``eager`` dispatch it right away."""
        self._check_open()
        idx = len(self._tasks)
        if not is_buffers(payload):
            self._fail_validation(idx, payload)
        task = _PoolTask(idx, payload, cost)
        self._tasks.append(task)
        self._out.append(None)
        bisect.insort(self._pending, (-task.cost, task.idx, task))
        if eager:
            # Absorb any finished results (frees workers) then dispatch.
            while self._pump(block=False):
                pass
            self._fill()
        return idx

    def results(self) -> List[Any]:
        """Block until every submitted item finished; payload order."""
        if self._error is not None:
            raise self._error
        self._check_open()
        self._check_abort()
        self._fill()
        while self._done < len(self._tasks):
            self._pump(block=True)
        self._close()
        if self._sink is not None:
            # The pool's demand-driven dispatch has no distinct steal
            # transition; keep the key so reports stay comparable
            # across scheduling modes.
            self._sink.incr("executor.steals", 0)
        return list(self._out)

    # -- internals -----------------------------------------------------
    def _check_open(self) -> None:
        if self._error is not None:
            raise self._error
        if self._closed:
            raise ExecutorError("streaming session already closed")

    def _close(self) -> None:
        if not self._closed:
            self._closed = True
            self._pool._call = None

    def _fail_validation(self, idx: int, payload) -> None:
        try:
            _check_buffer_payload(idx, payload)
        except ExecutorError as err:
            self._fail(err)

    def _fail(self, err: BaseException) -> None:
        """Abort the session: quiesce in-flight work, close, raise."""
        self._error = err
        self._quiesce()
        self._close()
        raise err

    def _quiesce(self) -> None:
        """Wait out in-flight items so the pool is reusable after abort.

        Results arriving during the wait are discarded (their shm wires
        freed).  Workers that refuse to finish within a bounded grace
        period are terminated and dropped — their stale results, if
        any, are drained by the next call.
        """
        pool = self._pool
        deadline = monotonic() + 30.0
        while any(h.task is not None for h in pool._workers.values()):
            if monotonic() > deadline:
                for rank in sorted(list(pool._workers)):
                    handle = pool._workers[rank]
                    if handle.task is not None:
                        handle.proc.terminate()
                        pool._retire(handle)
                break
            try:
                msg = pool._result_q.get(timeout=0.5)
            except queue_mod.Empty:
                for rank in sorted(list(pool._workers)):
                    handle = pool._workers.get(rank)
                    if handle is not None and not handle.proc.is_alive():
                        pool._workers.pop(rank, None)
                continue
            pool._handle_stale(msg)
            handle = pool._workers.get(msg[1])
            if handle is not None:
                handle.task = None
                handle.idle_since = monotonic()

    def _idle_worker(self) -> Optional[_PoolWorkerHandle]:
        """An idle live worker within this session's rank budget, or a
        fresh one when the pool is below budget, else None."""
        pool = self._pool
        for rank in sorted(list(pool._workers)):
            handle = pool._workers[rank]
            if handle.task is None and not handle.proc.is_alive():
                pool._retire(handle)  # died while idle: just clean up
        live = [pool._workers[r] for r in sorted(pool._workers)]
        for handle in live[: self._n_ranks]:
            if handle.task is None:
                return handle
        if len(live) < self._n_ranks:
            return pool._spawn()
        return None

    def _fill(self) -> None:
        """Dispatch pending items (largest first) onto idle workers."""
        while self._pending:
            handle = self._idle_worker()
            if handle is None:
                return
            _, _, task = self._pending.pop(0)
            self._dispatch(handle, task)

    def _dispatch(self, handle: _PoolWorkerHandle, task: _PoolTask) -> None:
        task.wire = serde.buffers_to_wire(task.payload)
        task.attempts += 1
        try:
            handle.conn.send(("task", self._epoch, task.idx, self._fn_mod,
                              self._fn_qual, task.wire,
                              self._sink is not None))
        except (OSError, BrokenPipeError, ValueError):
            # Worker vanished between liveness check and send; mark the
            # task in flight anyway — the death sweep respawns a worker
            # and requeues it.
            pass
        handle.task = task

    def _pump(self, *, block: bool) -> bool:
        """Absorb one result message; True if one was handled."""
        pool = self._pool
        if block:
            idle = 0.0
            while True:
                self._check_abort()
                try:
                    msg = pool._result_q.get(timeout=0.5)
                    break
                except queue_mod.Empty:
                    idle += 0.5
                    self._sweep_deaths()
                    if idle > self._idle_timeout:
                        self._fail(ExecutorError(
                            "processes pool made no progress for "
                            f"{self._idle_timeout:.0f}s — aborting"))
        else:
            try:
                msg = pool._result_q.get_nowait()
            except queue_mod.Empty:
                self._sweep_deaths()
                return False
        self._handle(msg)
        return True

    def _handle(self, msg) -> None:
        pool = self._pool
        kind = msg[0]
        rank = msg[1]
        epoch = msg[2]
        if epoch != self._epoch:
            pool._handle_stale(msg)
            return
        handle = pool._workers.get(rank)
        if kind == "ok":
            _, _, _, idx, wire, snapshot, elapsed, nbytes = msg
            task = self._tasks[idx]
            if handle is not None and handle.task is task:
                handle.task = None
                handle.idle_since = monotonic()
            if self._out[idx] is not None:
                # The worker finished, queued the result, and *then*
                # died; the death sweep already requeued the item and a
                # second result arrived.  Keep the first, free this one.
                serde.discard_wire(wire)
                return
            self._out[idx] = serde.wire_to_buffers(wire)
            self._done += 1
            sink = self._sink
            if sink is not None:
                if snapshot is not None:
                    sink.merge_snapshot(snapshot)
                sink.incr(f"executor.items.rank{rank}")
                sink.observe("executor.item_seconds", float(elapsed))
                sink.observe("executor.item_bytes", float(nbytes))
            self._fill()
        elif kind == "item_err":
            _, _, _, idx, tb = msg
            if handle is not None and handle.task is self._tasks[idx]:
                handle.task = None
                handle.idle_since = monotonic()
            if self._out[idx] is not None:
                return  # duplicate after requeue; result already good
            self._fail(ExecutorError(
                f"work item {idx} failed in pool worker {rank}:\n{tb}"))
        # Unknown kinds cannot occur: the worker protocol is closed.

    def _sweep_deaths(self) -> None:
        """Respawn dead workers; requeue their in-flight items."""
        pool = self._pool
        for rank in sorted(list(pool._workers)):
            handle = pool._workers.get(rank)
            if handle is None or handle.proc.is_alive():
                continue
            task = handle.task
            exitcode = handle.proc.exitcode
            pool._retire(handle)
            if task is None:
                continue
            pool.stats["respawns"] += 1
            if self._sink is not None:
                self._sink.incr("executor.respawns")
            # Free the payload envelope if the worker never attached it
            # (no-op when it was consumed before the crash).
            serde.discard_wire(task.wire)
            task.wire = None
            if task.attempts >= pool.max_attempts:
                self._fail(ExecutorError(
                    f"work item {task.idx} crashed its worker on all "
                    f"{task.attempts} dispatch attempts (last exit code "
                    f"{exitcode}) — giving up"))
            bisect.insort(self._pending, (-task.cost, task.idx, task))
        self._fill()


class ProcessesBackend:
    """GIL-free workers over ``multiprocessing`` (fork when available).

    Default dispatch is the persistent :class:`WorkerPool` (see the
    module docstring); ``REPRO_POOL=0`` or ``persistent=False`` selects
    the legacy fork-per-call LoadBoard path.  Buffer-dict payloads and
    results only; large dicts travel via refcounted shared-memory
    segments in both directions; per-item counter snapshots merge into
    the parent's ambient profiling sink.
    """

    name = "processes"
    parallel = True
    supports_sanitizer = False

    #: seconds without any worker progress before declaring a hang.
    idle_timeout = 600.0

    def __init__(self, start_method: Optional[str] = None,
                 persistent: Optional[bool] = None,
                 ttl: Optional[float] = None) -> None:
        self._start_method = start_method
        self._persistent = persistent
        self._ttl = ttl
        self._pool: Optional[WorkerPool] = None
        self._exclude_fds: Tuple[int, ...] = ()

    def _context(self):
        import multiprocessing as mp

        if self._start_method is not None:
            return mp.get_context(self._start_method)
        # fork inherits payloads by address space (no serialization at
        # dispatch); fall back to spawn where fork does not exist.
        methods = mp.get_all_start_methods()
        return mp.get_context("fork" if "fork" in methods else "spawn")

    # -- pool plumbing -------------------------------------------------
    @property
    def pool_enabled(self) -> bool:
        """Whether calls go through the persistent pool."""
        if self._persistent is not None:
            return bool(self._persistent)
        return os.environ.get(POOL_ENV, "1") != "0"

    def pool_ttl(self) -> float:
        if self._ttl is not None:
            return float(self._ttl)
        raw = os.environ.get(POOL_TTL_ENV)
        if raw:
            try:
                return float(raw)
            except ValueError:
                pass
        return DEFAULT_POOL_TTL

    def _get_pool(self) -> WorkerPool:
        if self._pool is not None and self._pool.closed:
            self._pool = None
        if self._pool is None:
            self._pool = WorkerPool(self._context(), ttl=self.pool_ttl())
            _POOLS.add(self._pool)
        else:
            self._pool.ttl = self.pool_ttl()
        self._pool.exclude_fds = self._exclude_fds
        return self._pool

    def warm_pool(self, n_ranks: int = 4) -> int:
        """Pre-fork pool workers up to ``n_ranks``; returns the count.

        Long-running daemons call this *before* opening sockets or
        files: workers forked later inherit every fd open at fork time,
        so a client connection fd duplicated into a worker keeps the
        peer from ever seeing EOF until that worker exits.  Warming
        first also moves the fork cost out of the first request.
        No-op (returns 0) when the warm pool is disabled.
        """
        if not self.pool_enabled:
            return 0
        pool = self._get_pool()
        while pool.n_workers() < n_ranks:
            pool._spawn()
        return pool.n_workers()

    def exclude_fds_from_workers(self, fds) -> None:
        """Register parent fds that workers must close at startup.

        Warming before bind keeps the *initial* workers clean, but a
        worker respawned after the daemon's listening socket exists
        forks with that fd open.  Registering it here makes every
        future (re)spawn close it immediately, so a stuck accept()
        cannot be wedged open by a forgotten duplicate.  Pass an empty
        list to deregister (e.g. right before the socket fd is closed
        and its number becomes reusable).
        """
        self._exclude_fds = tuple(int(fd) for fd in fds)
        if self._pool is not None and not self._pool.closed:
            self._pool.exclude_fds = self._exclude_fds

    def shutdown_pool(self) -> None:
        """Stop the persistent workers now (the next call re-forks)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def abort(self, reason: str = "aborted") -> bool:
        """Abort the in-flight dispatch, if any (see ``WorkerPool.abort_call``).

        Returns whether a dispatch was actually open.  Backends without
        an interruptible dispatch simply lack this method; callers probe
        with ``getattr`` and fall back to letting the batch finish.
        """
        if self._pool is None or self._pool.closed:
            return False
        return self._pool.abort_call(reason)

    def _check_sanitizer(self) -> None:
        if tsan.enabled():
            raise ExecutorError(
                "the runtime race sanitizer instruments shared-memory "
                "backends only; the processes backend shares no mutable "
                "state to instrument — run --sanitize with "
                "--backend threads (or serial) instead"
            )

    # -- dispatch ------------------------------------------------------
    def map_workitems(self, fn, payloads, *, costs=None, n_ranks=1):
        self._check_sanitizer()
        n_ranks = _check_ranks(n_ranks)
        _check_portable_fn(fn)
        _check_buffer_payloads(payloads)
        if not payloads:
            return []
        if costs is None:
            costs = [1.0] * len(payloads)
        if self.pool_enabled:
            sink = counters_mod.current()
            with phase(f"executor.{self.name}"):
                stream = PoolStream(self._get_pool(), fn,
                                    min(n_ranks, len(payloads)), sink,
                                    self.idle_timeout)
                for p, c in zip(payloads, costs):
                    stream.submit(p, cost=c, eager=False)
                return stream.results()
        return self._map_forked(fn, payloads, costs, n_ranks)

    def stream_workitems(self, fn, *, n_ranks=1):
        self._check_sanitizer()
        n_ranks = _check_ranks(n_ranks)
        _check_portable_fn(fn)
        if not self.pool_enabled:
            return _BufferedStream(self, fn, n_ranks)
        return PoolStream(self._get_pool(), fn, n_ranks,
                          counters_mod.current(), self.idle_timeout)

    # -- legacy fork-per-call path -------------------------------------
    def _map_forked(self, fn, payloads, costs, n_ranks):
        n_workers = min(n_ranks, len(payloads))
        ctx = self._context()
        board = LoadBoard(ctx, costs, lpt_assignment(costs, n_workers))
        result_q = ctx.Queue()
        sink = counters_mod.current()
        profile = sink is not None
        procs = [
            ctx.Process(target=_process_worker,
                        args=(rank, fn, list(payloads), board, result_q,
                              profile),
                        daemon=True)
            for rank in range(n_workers)
        ]
        out: List[Any] = [None] * len(payloads)
        seen = [False] * len(payloads)
        done = [False] * n_workers
        total_steals = 0
        with phase(f"executor.{self.name}"):
            for p in procs:
                p.start()
            try:
                idle = 0.0
                while not (all(seen) and all(done)):
                    try:
                        msg = result_q.get(timeout=0.5)
                    except queue_mod.Empty:
                        idle += 0.5
                        dead = [r for r, p in enumerate(procs)
                                if not done[r] and not p.is_alive()]
                        if dead:
                            raise ExecutorError(
                                f"worker process(es) {dead} died without "
                                "reporting (killed? out of memory?)"
                            )
                        if idle > self.idle_timeout:
                            raise ExecutorError(
                                "processes backend made no progress for "
                                f"{self.idle_timeout:.0f}s — aborting"
                            )
                        continue
                    idle = 0.0
                    if msg[0] == "ok":
                        _, idx, result = msg
                        out[idx] = result
                        seen[idx] = True
                    elif msg[0] == "shm":
                        _, idx, name, meta = msg
                        out[idx] = serde.buffers_from_shm(name, meta)
                        seen[idx] = True
                    elif msg[0] == "done":
                        _, rank, processed, steals, snapshot = msg
                        done[rank] = True
                        total_steals += steals
                        if snapshot is not None and sink is not None:
                            sink.merge_snapshot(snapshot)
                            sink.incr(f"executor.items.rank{rank}", processed)
                    else:
                        _, rank, tb = msg
                        raise ExecutorError(
                            f"worker {rank} failed:\n{tb}"
                        )
            finally:
                for p in procs:
                    if p.is_alive():
                        p.terminate()
                for p in procs:
                    p.join(timeout=10.0)
                result_q.close()
        if sink is not None:
            sink.incr("executor.steals", total_steals)
        return out


# ----------------------------------------------------------------------
# Default registry population
# ----------------------------------------------------------------------
register_backend(SerialBackend(), aliases=("local",))
register_backend(ThreadsBackend())
register_backend(ProcessesBackend())
