"""Pluggable execution backends: submit work items, collect results.

The paper's headline claim is wall-clock speedup from data decomposition
— independent subdomains refined by independent workers.  This module is
the seam that decides *what a worker is*:

``serial``  (alias ``local``)
    Run every item in the calling thread.  The reference backend: zero
    scheduling, zero transport, bit-exact baseline.

``threads``
    The SPMD threads runtime (:func:`repro.runtime.comm.run_spmd` +
    :class:`repro.runtime.loadbalance.DistributedWorker` + RMA
    :class:`~repro.runtime.rma.Window`): models the paper's MPI ranks,
    work stealing and termination detection faithfully — but the GIL
    serializes pure-Python refinement, so it exercises the *algorithm*,
    not the hardware.

``processes``
    True ``multiprocessing`` workers: largest-first static distribution
    (LPT) over N processes plus steal-on-idle through a shared
    :class:`LoadBoard`.  Payloads and results cross the process boundary
    only as flat numpy buffer dicts (:mod:`repro.runtime.serde`), never
    as pickled Python object graphs; results of ≥ 64 KiB travel through
    refcounted ``multiprocessing.shared_memory`` segments (the parent
    maps them zero-copy and unlinks when the last view dies); per-worker
    profiling counters are snapshotted and merged back into the parent's
    ambient sink.

Every backend implements the :class:`Backend` protocol —
``map_workitems(fn, payloads, costs, n_ranks) -> results`` (in payload
order) — and registers itself in a name registry the CLI derives its
``--backend`` choices from.

The runtime race sanitizer (:mod:`repro.lint.tsan`) instruments *shared
memory*; process workers share nothing mutable, so there is nothing for
it to instrument and ``processes`` + sanitizer fails fast with a clear
error instead of silently reporting a clean-but-vacuous run.
"""

from __future__ import annotations

import os
import traceback
from typing import Any, Callable, Dict, List, Optional, Protocol, Sequence

from ..lint import tsan
from . import counters as counters_mod
from . import serde
from .counters import phase
from .serde import is_buffers

__all__ = [
    "Backend",
    "ExecutorError",
    "LoadBoard",
    "SerialBackend",
    "ThreadsBackend",
    "ProcessesBackend",
    "register_backend",
    "get_backend",
    "available_backends",
    "canonical_backend_name",
    "resolve_backend_name",
]

#: environment override consulted when a caller passes ``backend=None``
#: (used by CI to drive the whole test pyramid through one backend).
BACKEND_ENV = "REPRO_BACKEND"


class ExecutorError(RuntimeError):
    """A backend could not run the submitted work."""


class Backend(Protocol):
    """The executor contract every backend satisfies.

    ``map_workitems`` applies a module-level function to every payload
    and returns the results *in payload order* regardless of which
    worker processed what.  ``costs`` (optional, same length) drive
    largest-first scheduling and stealing on the parallel backends.
    """

    #: registry name (canonical).
    name: str
    #: whether ``n_ranks`` changes anything.
    parallel: bool
    #: whether the runtime race sanitizer can instrument this backend.
    supports_sanitizer: bool

    def map_workitems(
        self,
        fn: Callable[[Any], Any],
        payloads: Sequence[Any],
        *,
        costs: Optional[Sequence[float]] = None,
        n_ranks: int = 1,
    ) -> List[Any]: ...


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, "Backend"] = {}
_ALIASES: Dict[str, str] = {}


def register_backend(backend: "Backend",
                     aliases: Sequence[str] = ()) -> "Backend":
    """Register a backend instance under its name (plus aliases)."""
    _REGISTRY[backend.name] = backend
    for alias in aliases:
        _ALIASES[alias] = backend.name
    return backend


def canonical_backend_name(name: str) -> str:
    """Resolve aliases (``local`` -> ``serial``); raise on unknown."""
    resolved = _ALIASES.get(name, name)
    if resolved not in _REGISTRY:
        raise ValueError(
            f"unknown backend: {name} (available: "
            f"{', '.join(available_backends())})"
        )
    return resolved


def get_backend(name: str) -> "Backend":
    """Look up a backend by registry name or alias."""
    return _REGISTRY[canonical_backend_name(name)]


def available_backends() -> List[str]:
    """Every accepted ``--backend`` value (canonical names + aliases)."""
    return sorted(set(_REGISTRY) | set(_ALIASES))


def resolve_backend_name(name: Optional[str], *,
                         default: str = "local") -> str:
    """Pick the backend name: explicit arg > ``REPRO_BACKEND`` > default."""
    if name is not None:
        return name
    return os.environ.get(BACKEND_ENV) or default


# ----------------------------------------------------------------------
# Shared validation
# ----------------------------------------------------------------------
def _check_ranks(n_ranks: int) -> int:
    if n_ranks < 1:
        raise ExecutorError(f"need at least one rank, got {n_ranks}")
    return int(n_ranks)


def _check_portable_fn(fn: Callable) -> None:
    """Process workers resolve ``fn`` by module path — reject closures."""
    qualname = getattr(fn, "__qualname__", "")
    if "<locals>" in qualname or not getattr(fn, "__module__", None):
        raise ExecutorError(
            f"work function {qualname or fn!r} must be a module-level "
            "function for the processes backend (closures cannot cross "
            "the process boundary); use serial/threads or lift it to "
            "module scope"
        )


def _check_buffer_payloads(payloads: Sequence[Any]) -> None:
    for i, p in enumerate(payloads):
        if not is_buffers(p):
            raise ExecutorError(
                f"payload {i} is {type(p).__name__}, not a flat "
                "dict[str, ndarray] buffer dict — pack it with "
                "repro.runtime.serde before submitting to the processes "
                "backend (no pickled object graphs on the hot path)"
            )


# ----------------------------------------------------------------------
# serial
# ----------------------------------------------------------------------
class SerialBackend:
    """Run every item in the calling thread, in submission order."""

    name = "serial"
    parallel = False
    supports_sanitizer = True

    def map_workitems(self, fn, payloads, *, costs=None, n_ranks=1):
        with phase(f"executor.{self.name}"):
            return [fn(p) for p in payloads]


# ----------------------------------------------------------------------
# threads
# ----------------------------------------------------------------------
class ThreadsBackend:
    """SPMD threads runtime with RMA-window work stealing.

    Faithful to the paper's runtime model (ranks, windows, stealing,
    atomic termination counting) and fully instrumentable by the race
    sanitizer — but GIL-bound for pure-Python work.
    """

    name = "threads"
    parallel = True
    supports_sanitizer = True

    def map_workitems(self, fn, payloads, *, costs=None, n_ranks=1):
        from .comm import run_spmd
        from .loadbalance import DistributedWorker, WorkItem
        from .rma import Window

        n_ranks = _check_ranks(n_ranks)
        if costs is None:
            costs = [1.0] * len(payloads)
        load_w = Window(n_ranks)
        counter_w = Window(1)
        counter_w.put(float(len(payloads)), 0)
        items = [
            WorkItem(cost=max(float(c), 1e-9), payload=(i, p))
            for i, (p, c) in enumerate(zip(payloads, costs))
        ]

        def process(item: WorkItem):
            idx, payload = item.payload
            with phase(f"executor.{self.name}.item"):
                return (idx, fn(payload)), []

        def spmd(comm):
            worker = DistributedWorker(comm, load_w, counter_w, process,
                                       steal_threshold=1.0)
            if comm.rank == 0:
                worker.seed(items)
            comm.barrier()
            return worker.run()

        with phase(f"executor.{self.name}"):
            per_rank = run_spmd(n_ranks, spmd)
        out: List[Any] = [None] * len(payloads)
        seen = [False] * len(payloads)
        for rank_results in per_rank:
            for idx, result in rank_results:
                out[idx] = result
                seen[idx] = True
        missing = [i for i, ok in enumerate(seen) if not ok]
        if missing:
            raise ExecutorError(f"work items {missing} were never processed")
        return out


# ----------------------------------------------------------------------
# processes
# ----------------------------------------------------------------------
class LoadBoard:
    """Shared claim board: largest-first assignment + steal-on-idle.

    One shared int array marks each item's claiming worker (-1 =
    unclaimed); one shared float array publishes every worker's
    remaining assigned load (the paper's RMA load-estimate window,
    realised in shared memory).  A worker claims its *own* items largest
    first; when its assignment drains it picks the most-loaded victim
    and claims that victim's largest unclaimed item.  All transitions
    happen under one shared lock, so an item is processed exactly once
    no matter how claims and steals interleave.
    """

    def __init__(self, ctx, costs: Sequence[float],
                 assignment: Sequence[Sequence[int]]) -> None:
        self._costs = [float(c) for c in costs]
        # Per-worker items, largest cost first.
        self._assignment = [
            sorted(items, key=lambda i: (-self._costs[i], i))
            for items in assignment
        ]
        self._owner_of = {}
        for w, items in enumerate(self._assignment):
            for i in items:
                self._owner_of[i] = w
        self._claims = ctx.Array("i", [-1] * max(len(costs), 1), lock=False)
        self._loads = ctx.Array("d", [
            sum(self._costs[i] for i in items) for items in self._assignment
        ] or [0.0], lock=False)
        self._lock = ctx.Lock()

    def _take(self, item: int, worker: int) -> None:
        self._claims[item] = worker
        owner = self._owner_of[item]
        self._loads[owner] -= self._costs[item]

    def claim(self, worker: int) -> Optional[tuple]:
        """Claim the next item for ``worker``: ``(item, stolen)`` or None.

        Own assignment first (largest-first); then steal the largest
        unclaimed item of the worker with the most remaining load.
        """
        with self._lock:
            for i in self._assignment[worker]:
                if self._claims[i] < 0:
                    self._take(i, worker)
                    return (i, False)
            victim = -1
            victim_load = 0.0
            for w in range(len(self._assignment)):
                if w == worker:
                    continue
                if self._loads[w] > victim_load:
                    victim, victim_load = w, self._loads[w]
            if victim >= 0:
                for i in self._assignment[victim]:
                    if self._claims[i] < 0:
                        self._take(i, worker)
                        return (i, True)
            # Fallback sweep: loads can only over-estimate remaining
            # work, so an unclaimed item anywhere is still claimable.
            for i in range(len(self._claims)):
                if self._claims[i] < 0:
                    self._take(i, worker)
                    return (i, self._owner_of[i] != worker)
            return None

    def remaining_loads(self) -> List[float]:
        with self._lock:
            return [float(x) for x in self._loads]


def lpt_assignment(costs: Sequence[float], n_workers: int) -> List[List[int]]:
    """Largest-processing-time-first static distribution.

    Items sorted by descending cost, each placed on the least-loaded
    worker — the classic 4/3-approximation, matching the paper's
    "subdomain estimated to need the most time is meshed first".
    """
    order = sorted(range(len(costs)), key=lambda i: (-float(costs[i]), i))
    loads = [0.0] * n_workers
    out: List[List[int]] = [[] for _ in range(n_workers)]
    for i in order:
        w = min(range(n_workers), key=lambda r: (loads[r], r))
        out[w].append(i)
        loads[w] += float(costs[i])
    return out


def _process_worker(rank: int, fn, payloads, board: LoadBoard,
                    result_q, profile: bool) -> None:
    """Worker-process main loop: claim, process, ship buffers back.

    Results at or above :data:`repro.runtime.serde.SHM_MIN_BYTES` go
    through a ``multiprocessing.shared_memory`` segment (one C-speed
    copy, no pickling of the arrays); only the segment name and layout
    cross the queue.  Small results ship inline — the pickle is cheaper
    than a segment round trip.
    """
    try:
        sink = counters_mod.Counters() if profile else None
        processed = 0
        steals = 0
        with counters_mod.use_counters(sink) if profile else _null_cm():
            while True:
                got = board.claim(rank)
                if got is None:
                    break
                idx, stolen = got
                with phase("executor.processes.item"):
                    result = fn(payloads[idx])
                if not is_buffers(result):
                    raise ExecutorError(
                        f"work function {fn.__qualname__} returned "
                        f"{type(result).__name__} for item {idx}; process "
                        "workers must return flat serde buffer dicts"
                    )
                if serde.buffers_nbytes(result) >= serde.SHM_MIN_BYTES:
                    try:
                        name, meta = serde.buffers_to_shm(result)
                        result_q.put(("shm", idx, name, meta))
                    except OSError:
                        # No usable /dev/shm (tiny containers): fall
                        # back to the inline path rather than fail.
                        result_q.put(("ok", idx, result))
                else:
                    result_q.put(("ok", idx, result))
                processed += 1
                steals += int(stolen)
        snapshot = sink.snapshot() if sink is not None else None
        result_q.put(("done", rank, processed, steals, snapshot))
    except BaseException:  # noqa: BLE001 - shipped to the parent
        result_q.put(("err", rank, traceback.format_exc()))


class _null_cm:
    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


class ProcessesBackend:
    """GIL-free workers over ``multiprocessing`` (fork when available).

    Largest-first static distribution plus steal-on-idle via the shared
    :class:`LoadBoard`; buffer-dict payloads/results only (large results
    via refcounted shared-memory segments); per-worker counter snapshots
    merged into the parent's ambient profiling sink.
    """

    name = "processes"
    parallel = True
    supports_sanitizer = False

    #: seconds without any worker progress before declaring a hang.
    idle_timeout = 600.0

    def __init__(self, start_method: Optional[str] = None) -> None:
        self._start_method = start_method

    def _context(self):
        import multiprocessing as mp

        if self._start_method is not None:
            return mp.get_context(self._start_method)
        # fork inherits payloads by address space (no serialization at
        # dispatch); fall back to spawn where fork does not exist.
        methods = mp.get_all_start_methods()
        return mp.get_context("fork" if "fork" in methods else "spawn")

    def map_workitems(self, fn, payloads, *, costs=None, n_ranks=1):
        if tsan.enabled():
            raise ExecutorError(
                "the runtime race sanitizer instruments shared-memory "
                "backends only; the processes backend shares no mutable "
                "state to instrument — run --sanitize with "
                "--backend threads (or serial) instead"
            )
        n_ranks = _check_ranks(n_ranks)
        _check_portable_fn(fn)
        _check_buffer_payloads(payloads)
        if not payloads:
            return []
        if costs is None:
            costs = [1.0] * len(payloads)
        n_workers = min(n_ranks, len(payloads))

        ctx = self._context()
        board = LoadBoard(ctx, costs, lpt_assignment(costs, n_workers))
        result_q = ctx.Queue()
        sink = counters_mod.current()
        profile = sink is not None
        procs = [
            ctx.Process(target=_process_worker,
                        args=(rank, fn, list(payloads), board, result_q,
                              profile),
                        daemon=True)
            for rank in range(n_workers)
        ]
        out: List[Any] = [None] * len(payloads)
        seen = [False] * len(payloads)
        done = [False] * n_workers
        total_steals = 0
        with phase(f"executor.{self.name}"):
            for p in procs:
                p.start()
            try:
                import queue as queue_mod

                idle = 0.0
                while not (all(seen) and all(done)):
                    try:
                        msg = result_q.get(timeout=0.5)
                    except queue_mod.Empty:
                        idle += 0.5
                        dead = [r for r, p in enumerate(procs)
                                if not done[r] and not p.is_alive()]
                        if dead:
                            raise ExecutorError(
                                f"worker process(es) {dead} died without "
                                "reporting (killed? out of memory?)"
                            )
                        if idle > self.idle_timeout:
                            raise ExecutorError(
                                "processes backend made no progress for "
                                f"{self.idle_timeout:.0f}s — aborting"
                            )
                        continue
                    idle = 0.0
                    if msg[0] == "ok":
                        _, idx, result = msg
                        out[idx] = result
                        seen[idx] = True
                    elif msg[0] == "shm":
                        _, idx, name, meta = msg
                        out[idx] = serde.buffers_from_shm(name, meta)
                        seen[idx] = True
                    elif msg[0] == "done":
                        _, rank, processed, steals, snapshot = msg
                        done[rank] = True
                        total_steals += steals
                        if snapshot is not None and sink is not None:
                            sink.merge_snapshot(snapshot)
                            sink.incr(f"executor.items.rank{rank}", processed)
                    else:
                        _, rank, tb = msg
                        raise ExecutorError(
                            f"worker {rank} failed:\n{tb}"
                        )
            finally:
                for p in procs:
                    if p.is_alive():
                        p.terminate()
                for p in procs:
                    p.join(timeout=10.0)
                result_q.close()
        if sink is not None:
            sink.incr("executor.steals", total_steals)
        return out


# ----------------------------------------------------------------------
# Default registry population
# ----------------------------------------------------------------------
register_backend(SerialBackend(), aliases=("local",))
register_backend(ThreadsBackend())
register_backend(ProcessesBackend())
