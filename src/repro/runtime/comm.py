"""In-process message-passing runtime (the MPI-subset substrate).

The paper's implementation targets MPICH 3.0 + POSIX threads.  This
module provides the exact subset the algorithms use — point-to-point
send/recv with tags, barrier, broadcast, gather, scatter, allreduce —
over an in-process *threads* backend, so every rank runs the same SPMD
function concurrently and all communication paths are exercised for real.
(True multi-node speedup is out of scope for a pure-Python reproduction —
see DESIGN.md; wall-clock scaling is studied with the discrete-event
cluster simulator in :mod:`repro.runtime.simulator`.)

Communication of NumPy arrays follows the mpi4py buffer discipline: the
payload object is handed over by reference but the convention is that the
sender never mutates a sent array (the gather of boundary-layer
coordinates sends plain float arrays, matching the paper's
"only the coordinates need to be communicated" optimisation).
"""

from __future__ import annotations

import itertools
import queue
import threading
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..lint import tsan

__all__ = ["ANY_SOURCE", "ANY_TAG", "Message", "ThreadComm", "run_spmd",
           "CommError"]

ANY_SOURCE = -1
ANY_TAG = -1


class CommError(RuntimeError):
    pass


@dataclass
class Message:
    source: int
    tag: int
    payload: Any
    #: sender's vector-clock snapshot under ``REPRO_SANITIZE=1`` (the
    #: happens-before edge of the transfer); ``None`` otherwise.
    clock: Any = None


def payload_nbytes(obj: Any) -> int:
    """Estimated wire size of a message payload.

    NumPy arrays count their buffer size (the paper's fast path: plain
    coordinate arrays); everything else is sized by its pickle — the same
    accounting mpi4py's lowercase API implies.
    """
    import pickle

    import numpy as _np

    if isinstance(obj, _np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, (list, tuple)) and obj and all(
        isinstance(o, _np.ndarray) for o in obj
    ):
        return int(sum(o.nbytes for o in obj))
    try:
        return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:  # unpicklable payloads still need a size
        return 0


#: process-unique communicator-group ids: sanitizer location keys must
#: be scoped per group, or box accesses from two unrelated SPMD sessions
#: would look like conflicting accesses to one location.
_COMM_IDS = itertools.count()


class _SharedState:
    """State shared by all ranks of one communicator group."""

    def __init__(self, size: int) -> None:
        self.size = size
        self.comm_id = next(_COMM_IDS)
        self.queues: List[queue.Queue] = [queue.Queue() for _ in range(size)]
        self.barrier = threading.Barrier(size)
        self.bcast_box: Dict[int, Any] = {}
        self.gather_box: Dict[int, Dict[int, Any]] = {}
        self.reduce_box: Dict[int, Dict[int, Any]] = {}
        self.lock = threading.Lock()
        self._collective_seq = [0] * size
        # Communication-volume accounting (point-to-point + collectives).
        self.bytes_sent = [0] * size
        self.msgs_sent = [0] * size


class ThreadComm:
    """One rank's endpoint of a threads-backed communicator.

    Mirrors the mpi4py lowercase (pickle-object) API surface the
    algorithms need.  Collectives are implemented with a shared barrier +
    exchange boxes, so they synchronise exactly like their MPI
    counterparts.
    """

    def __init__(self, shared: _SharedState, rank: int) -> None:
        self._shared = shared
        self.rank = rank
        self.size = shared.size
        # Buffer for out-of-order receives (tag/source matching).
        self._stash: List[Message] = []

    # ------------------------------------------------------------------
    # Point to point
    # ------------------------------------------------------------------
    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        if not 0 <= dest < self.size:
            raise CommError(f"bad destination rank {dest}")
        self._shared.bytes_sent[self.rank] += payload_nbytes(obj)
        self._shared.msgs_sent[self.rank] += 1
        self._shared.queues[dest].put(
            Message(self.rank, tag, obj, tsan.note_send()))

    @property
    def bytes_sent(self) -> int:
        return self._shared.bytes_sent[self.rank]

    def total_bytes_sent(self) -> int:
        return sum(self._shared.bytes_sent)

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
             timeout: Optional[float] = None) -> Message:
        """Blocking receive with source/tag matching."""
        # Check the stash first.
        for i, m in enumerate(self._stash):
            if self._matches(m, source, tag):
                tsan.note_recv(m.clock)
                return self._stash.pop(i)
        while True:
            try:
                m = self._shared.queues[self.rank].get(timeout=timeout)
            except queue.Empty:
                raise CommError("recv timed out") from None
            if self._matches(m, source, tag):
                tsan.note_recv(m.clock)
                return m
            self._stash.append(m)

    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> bool:
        """Non-blocking probe: is a matching message available?"""
        for m in self._stash:
            if self._matches(m, source, tag):
                return True
        # Drain queue into the stash without blocking.
        while True:
            try:
                m = self._shared.queues[self.rank].get_nowait()
            except queue.Empty:
                break
            self._stash.append(m)
        return any(self._matches(m, source, tag) for m in self._stash)

    @staticmethod
    def _matches(m: Message, source: int, tag: int) -> bool:
        return (source in (ANY_SOURCE, m.source)) and (tag in (ANY_TAG, m.tag))

    # ------------------------------------------------------------------
    # Collectives
    # ------------------------------------------------------------------
    def _barrier_wait(self) -> None:
        """Barrier with sanitizer happens-before edges.

        Entering publishes this thread's clock; leaving joins every
        participant's entry clock — so box accesses separated by a
        barrier are ordered without needing the lock.
        """
        bar = self._shared.barrier
        key = (self._shared.comm_id, "barrier")
        tsan.note_barrier_begin(key)
        bar.wait()
        tsan.note_barrier_end(key)

    def barrier(self) -> None:
        self._barrier_wait()

    def bcast(self, obj: Any, root: int = 0) -> Any:
        sh = self._shared
        if self.rank == root:
            with sh.lock:
                tsan.note_acquire(sh.lock)
                tsan.note_access((sh.comm_id, "bcast_box", root), True)
                sh.bcast_box[root] = obj
                tsan.note_release(sh.lock)
        self._barrier_wait()
        tsan.note_access((sh.comm_id, "bcast_box", root), False)
        out = sh.bcast_box[root]  # lint: disable=R6 -- barrier-ordered read after the root's locked write; verified by the runtime sanitizer
        self._barrier_wait()
        if self.rank == root:
            with sh.lock:
                tsan.note_acquire(sh.lock)
                tsan.note_access((sh.comm_id, "bcast_box", root), True)
                sh.bcast_box.pop(root, None)
                tsan.note_release(sh.lock)
        # Third barrier: cleanup must complete before any rank can start
        # the next collective (otherwise the pop races with its write).
        self._barrier_wait()
        return out

    def gather(self, obj: Any, root: int = 0) -> Optional[List[Any]]:
        sh = self._shared
        if self.rank != root:
            sh.bytes_sent[self.rank] += payload_nbytes(obj)
            sh.msgs_sent[self.rank] += 1
        with sh.lock:
            tsan.note_acquire(sh.lock)
            tsan.note_access((sh.comm_id, "gather_box", root, self.rank), True)
            sh.gather_box.setdefault(root, {})[self.rank] = obj
            tsan.note_release(sh.lock)
        self._barrier_wait()
        out = None
        if self.rank == root:
            for r in range(self.size):
                tsan.note_access((sh.comm_id, "gather_box", root, r), False)
            box = sh.gather_box[root]  # lint: disable=R6 -- barrier-ordered read after every rank's locked write; verified by the runtime sanitizer
            out = [box[r] for r in range(self.size)]
        self._barrier_wait()
        if self.rank == root:
            with sh.lock:
                tsan.note_acquire(sh.lock)
                for r in range(self.size):
                    tsan.note_access((sh.comm_id, "gather_box", root, r), True)
                sh.gather_box.pop(root, None)
                tsan.note_release(sh.lock)
        self._barrier_wait()
        return out

    def scatter(self, objs: Optional[Sequence[Any]], root: int = 0) -> Any:
        sh = self._shared
        if self.rank == root:
            if objs is None or len(objs) != self.size:
                raise CommError("scatter needs one object per rank")
            sh.bytes_sent[root] += sum(
                payload_nbytes(o) for i, o in enumerate(objs) if i != root)
            sh.msgs_sent[root] += self.size - 1
            with sh.lock:
                tsan.note_acquire(sh.lock)
                tsan.note_access((sh.comm_id, "bcast_box", "scatter", root), True)
                sh.bcast_box[("scatter", root)] = list(objs)
                tsan.note_release(sh.lock)
        self._barrier_wait()
        tsan.note_access((sh.comm_id, "bcast_box", "scatter", root), False)
        out = sh.bcast_box[("scatter", root)][self.rank]  # lint: disable=R6 -- barrier-ordered read after the root's locked write; verified by the runtime sanitizer
        self._barrier_wait()
        if self.rank == root:
            with sh.lock:
                tsan.note_acquire(sh.lock)
                tsan.note_access((sh.comm_id, "bcast_box", "scatter", root), True)
                sh.bcast_box.pop(("scatter", root), None)
                tsan.note_release(sh.lock)
        self._barrier_wait()
        return out

    def allreduce(self, value: Any, op: Callable[[Any, Any], Any] = None) -> Any:
        import functools

        if op is None:
            op = lambda a, b: a + b  # noqa: E731
        sh = self._shared
        with sh.lock:
            tsan.note_acquire(sh.lock)
            tsan.note_access((sh.comm_id, "reduce_box", 0, self.rank), True)
            sh.reduce_box.setdefault(0, {})[self.rank] = value
            tsan.note_release(sh.lock)
        self._barrier_wait()
        for r in range(self.size):
            tsan.note_access((sh.comm_id, "reduce_box", 0, r), False)
        vals = [sh.reduce_box[0][r] for r in range(self.size)]  # lint: disable=R6 -- barrier-ordered read after every rank's locked write; verified by the runtime sanitizer
        out = functools.reduce(op, vals)
        self._barrier_wait()
        if self.rank == 0:
            with sh.lock:
                tsan.note_acquire(sh.lock)
                for r in range(self.size):
                    tsan.note_access((sh.comm_id, "reduce_box", 0, r), True)
                sh.reduce_box.pop(0, None)
                tsan.note_release(sh.lock)
        self._barrier_wait()
        return out


def run_spmd(n_ranks: int, fn: Callable[[ThreadComm], Any],
             *, timeout: float = 600.0) -> List[Any]:
    """Run ``fn(comm)`` on ``n_ranks`` concurrent threads (SPMD).

    Returns the per-rank return values; re-raises the first rank
    exception (after joining all threads) so failures surface in tests.
    """
    if n_ranks < 1:
        raise ValueError("need at least one rank")
    shared = _SharedState(n_ranks)
    results: List[Any] = [None] * n_ranks
    errors: List[Optional[BaseException]] = [None] * n_ranks

    def runner(rank: int) -> None:
        comm = ThreadComm(shared, rank)
        try:
            results[rank] = fn(comm)
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors[rank] = exc
            # Break barriers so other ranks don't deadlock.
            shared.barrier.abort()

    threads = [threading.Thread(target=runner, args=(r,), daemon=True)
               for r in range(n_ranks)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout)
        if t.is_alive():
            raise CommError("SPMD run timed out (deadlock?)")
    # Prefer a real failure over the BrokenBarrierError fallout it causes
    # on the other ranks.
    import threading as _threading

    primary = [e for e in errors
               if e is not None
               and not isinstance(e, _threading.BrokenBarrierError)]
    if primary:
        raise primary[0]
    for e in errors:
        if e is not None:
            raise e
    return results
