"""Execution traces and text Gantt rendering for the cluster simulator.

The paper reasons about end-of-run behaviour ("minimize process idle time
during the final moments of execution", Section IV); a timeline makes
that inspectable.  :func:`simulate_traced` runs the same discrete-event
simulation as :func:`repro.runtime.simulator.simulate` while recording
per-rank busy intervals and steal events, and :func:`render_gantt` draws
an ASCII utilisation chart.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .simulator import SimConfig, SimResult, SimTask, simulate

__all__ = ["BusyInterval", "SimTrace", "simulate_traced", "render_gantt"]


@dataclass
class BusyInterval:
    rank: int
    start: float
    end: float
    task_id: int


@dataclass
class SimTrace:
    result: SimResult
    intervals: List[BusyInterval]
    steal_times: List[float]

    def idle_fraction_tail(self, tail_frac: float = 0.1) -> float:
        """Mean idle fraction over the final ``tail_frac`` of the run —
        the end-game metric the largest-first queue targets."""
        mk = self.result.makespan
        t0 = mk * (1.0 - tail_frac)
        P = len(self.result.busy)
        window = mk - t0
        if window <= 0:
            return 0.0
        busy_tail = 0.0
        for iv in self.intervals:
            lo = max(iv.start, t0)
            hi = min(iv.end, mk)
            if hi > lo:
                busy_tail += hi - lo
        return 1.0 - busy_tail / (P * window)


def simulate_traced(tasks: Sequence[SimTask], n_ranks: int,
                    config: Optional[SimConfig] = None) -> SimTrace:
    """Run the simulation and capture the execution timeline.

    Implemented by monkey-free re-simulation: the simulator is
    deterministic, so we re-run it with interval capture enabled through
    its module-level hook.
    """
    intervals: List[BusyInterval] = []
    steal_times: List[float] = []
    result = simulate(tasks, n_ranks, config, _record=intervals,
                      _record_steals=steal_times)
    return SimTrace(result=result, intervals=intervals,
                    steal_times=steal_times)


def render_gantt(trace: SimTrace, *, width: int = 72,
                 max_ranks: int = 32) -> str:
    """ASCII utilisation chart: one row per rank, '#' = busy, '.' = idle."""
    mk = trace.result.makespan
    P = len(trace.result.busy)
    rows = []
    shown = min(P, max_ranks)
    grid = np.zeros((shown, width), dtype=bool)
    for iv in trace.intervals:
        if iv.rank >= shown or mk <= 0:
            continue
        lo = int(iv.start / mk * width)
        hi = max(int(np.ceil(iv.end / mk * width)), lo + 1)
        grid[iv.rank, lo:min(hi, width)] = True
    for r in range(shown):
        line = "".join("#" if b else "." for b in grid[r])
        rows.append(f"r{r:03d} |{line}|")
    if P > shown:
        rows.append(f"... ({P - shown} more ranks)")
    util = trace.result.efficiency_internal
    rows.append(f"makespan {mk:.4f}s, utilisation {util:.0%}, "
                f"steals {trace.result.n_steal_successes}")
    return "\n".join(rows)
