"""Parallel runtime substrate: in-process MPI subset, RMA window,
work-stealing load balancer, and the discrete-event cluster simulator."""

from .comm import ANY_SOURCE, ANY_TAG, CommError, Message, ThreadComm, run_spmd
from .loadbalance import DistributedWorker, WorkItem, WorkQueue
from .rma import Window
from .simulator import (
    NetworkModel,
    SimConfig,
    SimResult,
    SimTask,
    simulate,
    strong_scaling,
)

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "CommError",
    "DistributedWorker",
    "Message",
    "NetworkModel",
    "SimConfig",
    "SimResult",
    "SimTask",
    "ThreadComm",
    "Window",
    "WorkItem",
    "WorkQueue",
    "run_spmd",
    "simulate",
    "strong_scaling",
]
