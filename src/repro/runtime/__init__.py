"""Parallel runtime substrate: in-process MPI subset, RMA window,
work-stealing load balancer, and the discrete-event cluster simulator."""

from .comm import ANY_SOURCE, ANY_TAG, CommError, Message, ThreadComm, run_spmd
from .counters import Counters, Histogram, KernelCounters, current, phase, use_counters
from .loadbalance import DistributedWorker, WorkItem, WorkQueue
from .rma import Window
from .simulator import (
    NetworkModel,
    SimConfig,
    SimResult,
    SimTask,
    simulate,
    strong_scaling,
)

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "CommError",
    "Counters",
    "DistributedWorker",
    "Histogram",
    "KernelCounters",
    "Message",
    "NetworkModel",
    "SimConfig",
    "SimResult",
    "SimTask",
    "ThreadComm",
    "Window",
    "WorkItem",
    "WorkQueue",
    "current",
    "phase",
    "run_spmd",
    "simulate",
    "strong_scaling",
    "use_counters",
]
