"""Parallel runtime substrate: pluggable executor backends, in-process
MPI subset, RMA window, work-stealing load balancer, buffer serde, the
discrete-event cluster simulator, and the meshing service daemon."""

from .client import MeshReply, ServiceClient
from .comm import ANY_SOURCE, ANY_TAG, CommError, Message, ThreadComm, run_spmd
from .counters import Counters, Histogram, KernelCounters, current, phase, use_counters
from .executor import (
    Backend,
    ExecutorError,
    available_backends,
    canonical_backend_name,
    get_backend,
    register_backend,
    resolve_backend_name,
)
from .loadbalance import DistributedWorker, WorkItem, WorkQueue
from .rma import Window
from .service import (
    MeshCache,
    MeshService,
    ServiceError,
    ServiceThread,
    ServiceUnavailable,
)
from .simulator import (
    NetworkModel,
    SimConfig,
    SimResult,
    SimTask,
    simulate,
    strong_scaling,
)

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Backend",
    "CommError",
    "Counters",
    "DistributedWorker",
    "ExecutorError",
    "Histogram",
    "KernelCounters",
    "MeshCache",
    "MeshReply",
    "MeshService",
    "Message",
    "NetworkModel",
    "ServiceClient",
    "ServiceError",
    "ServiceThread",
    "ServiceUnavailable",
    "SimConfig",
    "SimResult",
    "SimTask",
    "ThreadComm",
    "Window",
    "WorkItem",
    "WorkQueue",
    "available_backends",
    "canonical_backend_name",
    "current",
    "get_backend",
    "phase",
    "register_backend",
    "resolve_backend_name",
    "run_spmd",
    "simulate",
    "strong_scaling",
    "use_counters",
]
