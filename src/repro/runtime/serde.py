"""Compact buffer serialization for cross-process transport.

The process backend of :mod:`repro.runtime.executor` ships work between
address spaces.  Following the paper's communication discipline ("only
the coordinates need to be communicated") every domain object that
crosses a process boundary is flattened here into a **buffer dict** — a
flat ``Dict[str, numpy.ndarray]`` of contiguous float64/int32/uint8
arrays — instead of a pickled Python object graph.  The arrays carry raw
coordinate/index bits, so a round trip is *exact*: unpacking reproduces
bit-identical geometry, which is what makes the backend-parity guarantee
(`serial` == `threads` == `processes` meshes) trivial to maintain.

Supported objects:

* :class:`~repro.core.decouple.DecoupledSubdomain` — ring + hole rings
  concatenated into one coordinate array with an offsets table;
* :class:`~repro.delaunay.mesh.TriMesh` — points/triangles/segments;
* :class:`~repro.geometry.pslg.PSLG` — points, loop index table, flags,
  and a uint8-encoded name blob;
* sizing functions (``Uniform``/``Radial``/``GradedDistance``) — a kind
  code plus parameter/point arrays (``CallableSizing`` is *not*
  serializable — it wraps an arbitrary closure — and is rejected with a
  clear error pointing at the in-process backends);
* :class:`~repro.core.bl_pipeline.BoundaryLayerConfig` — numeric fields
  plus the triangulation-mode string (a custom ``growth`` override is
  rejected for the same reason as ``CallableSizing``).

Composition: :func:`nest` prefixes a packed dict's keys so several
objects share one payload; :func:`unnest` extracts them back.

Canonical byte stream: :func:`buffers_to_bytes` flattens a buffer dict
into one deterministic byte string (keys sorted, dtype + shape + raw
array bits) and :func:`bytes_to_buffers` maps it back as zero-copy
read-only views.  Because the encoding is canonical — independent of
dict insertion order and of how the arrays were produced —
:func:`canonical_hash` (SHA-256 over the stream) is a *content address*:
two requests hash equal iff their packed geometry/config bits are
identical.  The meshing service keys its mesh cache and frames its
socket protocol with exactly this encoding.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = [
    "Buffers",
    "SerdeError",
    "is_buffers",
    "buffers_nbytes",
    "nest",
    "unnest",
    "buffers_to_bytes",
    "bytes_to_buffers",
    "canonical_hash",
    "SHM_MIN_BYTES",
    "buffers_to_shm",
    "buffers_from_shm",
    "Wire",
    "buffers_to_wire",
    "wire_to_buffers",
    "wire_nbytes",
    "discard_wire",
    "pack_mesh",
    "unpack_mesh",
    "pack_metric",
    "unpack_metric",
    "pack_subdomain",
    "unpack_subdomain",
    "pack_pslg",
    "unpack_pslg",
    "pack_sizing",
    "unpack_sizing",
    "pack_bl_config",
    "unpack_bl_config",
    "pack_mesh_config",
    "unpack_mesh_config",
]

Buffers = Dict[str, np.ndarray]


class SerdeError(TypeError):
    """An object cannot be represented as flat numpy buffers."""


def is_buffers(obj: object) -> bool:
    """True when ``obj`` is a flat ``str -> ndarray`` buffer dict."""
    return (
        isinstance(obj, dict)
        and all(isinstance(k, str) for k in obj)
        and all(isinstance(v, np.ndarray) for v in obj.values())
    )


def buffers_nbytes(buffers: Buffers) -> int:
    """Wire size of a buffer dict (sum of raw array buffers)."""
    return int(sum(v.nbytes for v in buffers.values()))


def _text(s: str) -> np.ndarray:
    return np.frombuffer(s.encode("utf-8"), dtype=np.uint8).copy()


def _untext(arr: np.ndarray) -> str:
    return bytes(np.ascontiguousarray(arr, dtype=np.uint8)).decode("utf-8")


def _f64(a, shape_tail: int = 0) -> np.ndarray:
    out = np.ascontiguousarray(np.asarray(a, dtype=np.float64))
    if shape_tail and (out.ndim != 2 or out.shape[1] != shape_tail):
        out = out.reshape(-1, shape_tail)
    return out


def _i32(a) -> np.ndarray:
    return np.ascontiguousarray(np.asarray(a, dtype=np.int32))


# ----------------------------------------------------------------------
# Composition
# ----------------------------------------------------------------------
def nest(prefix: str, buffers: Buffers) -> Buffers:
    """Prefix every key so several packed objects share one payload."""
    return {prefix + k: v for k, v in buffers.items()}


def unnest(prefix: str, payload: Buffers) -> Buffers:
    """Extract the sub-dict packed under ``prefix`` by :func:`nest`."""
    n = len(prefix)
    out = {k[n:]: v for k, v in payload.items() if k.startswith(prefix)}
    if not out:
        raise SerdeError(f"payload holds nothing under prefix {prefix!r}")
    return out


# ----------------------------------------------------------------------
# Canonical byte stream + content addressing
# ----------------------------------------------------------------------
#: canonical stream magic + version; bump on any layout change so a
#: stale cache or an old client fails loudly instead of misparsing.
CANON_MAGIC = b"RSB1"

#: per-entry fixed header: key length (u16), dtype-str length (u8),
#: ndim (u8), payload nbytes (u64).
_CANON_ENTRY = struct.Struct("<HBBQ")
_CANON_HEAD = struct.Struct("<4sI")


def buffers_to_bytes(buffers: Buffers) -> bytes:
    """Serialize a buffer dict into one canonical byte string.

    Canonical means *content-determined*: entries are emitted in sorted
    key order and each carries only key, dtype, shape and the raw
    C-contiguous array bytes — no dict order, no strides, no flags.
    Two dicts holding bit-identical arrays under the same keys encode to
    the same bytes however they were built, which is what makes
    :func:`canonical_hash` usable as a cache address.
    """
    parts: List[bytes] = [_CANON_HEAD.pack(CANON_MAGIC, len(buffers))]
    for key in sorted(buffers):
        a = np.ascontiguousarray(buffers[key])
        kb = key.encode("utf-8")
        db = a.dtype.str.encode("ascii")
        parts.append(_CANON_ENTRY.pack(len(kb), len(db), a.ndim, a.nbytes))
        parts.append(kb)
        parts.append(db)
        parts.append(struct.pack(f"<{a.ndim}q", *a.shape) if a.ndim else b"")
        parts.append(a.tobytes())
    return b"".join(parts)


def bytes_to_buffers(data: bytes) -> Buffers:
    """Decode a :func:`buffers_to_bytes` stream as zero-copy views.

    The returned arrays are read-only views over ``data`` (no copy of
    the payload bytes), so serving a cached mesh is a pointer hand-off,
    not a reserialization.
    """
    view = memoryview(data)
    if len(view) < _CANON_HEAD.size:
        raise SerdeError("canonical stream truncated (no header)")
    magic, n_entries = _CANON_HEAD.unpack_from(view, 0)
    if magic != CANON_MAGIC:
        raise SerdeError(
            f"bad canonical stream magic {magic!r} (want {CANON_MAGIC!r})")
    out: Buffers = {}
    off = _CANON_HEAD.size
    try:
        for _ in range(n_entries):
            klen, dlen, ndim, nbytes = _CANON_ENTRY.unpack_from(view, off)
            off += _CANON_ENTRY.size
            key = bytes(view[off:off + klen]).decode("utf-8")
            off += klen
            dtype = np.dtype(bytes(view[off:off + dlen]).decode("ascii"))
            off += dlen
            shape = struct.unpack_from(f"<{ndim}q", view, off)
            off += 8 * ndim
            count = nbytes // dtype.itemsize if dtype.itemsize else 0
            a = np.frombuffer(view, dtype=dtype, count=count,
                              offset=off).reshape(shape)
            a.flags.writeable = False
            out[key] = a
            off += nbytes
    except (struct.error, ValueError) as exc:
        raise SerdeError(f"canonical stream truncated or corrupt: {exc}")
    if off != len(view):
        raise SerdeError(
            f"canonical stream has {len(view) - off} trailing bytes")
    return out


def canonical_hash(buffers: Buffers) -> str:
    """SHA-256 content address of a buffer dict (canonical encoding).

    Invariant under dict key order and under serde pack -> unpack round
    trips (those are bit-exact); different geometry/config bits give a
    different address.  This is the mesh cache key.
    """
    h = hashlib.sha256()
    h.update(_CANON_HEAD.pack(CANON_MAGIC, len(buffers)))
    for key in sorted(buffers):
        a = np.ascontiguousarray(buffers[key])
        kb = key.encode("utf-8")
        db = a.dtype.str.encode("ascii")
        h.update(_CANON_ENTRY.pack(len(kb), len(db), a.ndim, a.nbytes))
        h.update(kb)
        h.update(db)
        if a.ndim:
            h.update(struct.pack(f"<{a.ndim}q", *a.shape))
        h.update(a.tobytes())
    return h.hexdigest()


# ----------------------------------------------------------------------
# Shared-memory transport
# ----------------------------------------------------------------------
#: Results below this wire size ship inline through the queue — one
#: 64 KiB pickle is cheaper than a segment create/attach round trip.
SHM_MIN_BYTES = 1 << 16

#: Picklable segment layout: ``(key, dtype_str, shape, byte_offset)``.
ShmMeta = List[Tuple[str, str, Tuple[int, ...], int]]


def buffers_to_shm(buffers: Buffers) -> Tuple[str, ShmMeta]:
    """Copy a buffer dict into one ``multiprocessing.shared_memory``
    segment (single C-speed copy per array, no pickling of the data).

    Returns ``(name, meta)``; only this small control tuple crosses the
    queue.  The caller-side segment handle is closed and the segment is
    *unregistered from this process's resource tracker* before returning:
    ownership transfers with the name.  Without the unregister, a sender
    process exiting before the receiver attaches would have its tracker
    unlink the segment and destroy the result in flight.  The receiver
    (:func:`buffers_from_shm`) re-registers on attach and owns unlinking.
    """
    from multiprocessing import resource_tracker, shared_memory

    meta: ShmMeta = []
    offset = 0
    arrays = []
    for key, v in buffers.items():
        a = np.ascontiguousarray(v)
        offset = (offset + 7) & ~7  # 8-byte-align every block
        meta.append((key, a.dtype.str, a.shape, offset))
        arrays.append(a)
        offset += a.nbytes
    from . import counters as counters_mod

    t0 = counters_mod.monotonic()
    shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
    try:
        for (key, dtype, shape, off), a in zip(meta, arrays):
            if a.size:
                dst = np.frombuffer(shm.buf, dtype=a.dtype, count=a.size,
                                    offset=off)
                dst[:] = a.ravel()
                del dst  # release the view so close() can unmap
        name = shm.name
        try:
            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:
            pass  # non-POSIX trackers: registration never happened
    finally:
        shm.close()
    sink = counters_mod.current()
    if sink is not None:
        sink.incr("serde.bytes_shm", offset)
        # Paired (nbytes, seconds) observations: the simulator fits its
        # alpha-beta NetworkModel against these streams.
        sink.observe("serde.shm_nbytes", float(offset))
        sink.observe("serde.shm_seconds", counters_mod.monotonic() - t0)
    return name, meta


#: Fallback keep-alive registry for exotic platforms (see below).
_shm_keepalive: List[object] = []


def buffers_from_shm(name: str, meta: ShmMeta) -> Buffers:
    """Attach a segment written by :func:`buffers_to_shm` and return the
    buffer dict as **read-only zero-copy views** over the mapping.

    Lifetime is refcounted through the buffer chain, the classic POSIX
    unlink-after-attach idiom: the name is unlinked immediately (which
    also deregisters it from the resource tracker), so the kernel frees
    the segment as soon as the last mapping disappears — i.e. when the
    last returned array is garbage-collected and releases the
    ``array -> memoryview -> mmap`` chain.  No finalizer callbacks are
    involved (an ndarray finalizer fires *before* the array releases its
    buffer export, so an explicit ``close()`` there can never succeed on
    the last view).  Nothing is copied out.
    """
    import os

    from multiprocessing import shared_memory

    shm = shared_memory.SharedMemory(name=name)
    try:
        shm.unlink()
    except FileNotFoundError:
        pass
    buf = shm.buf
    # Detach the handle so ``SharedMemory.__del__`` cannot try to close
    # the mapping out from under the live views; the mmap stays alive
    # through ``buf`` and unmaps (freeing the unlinked segment) when the
    # last array view dies.  The fd is not needed once mapped.
    try:
        shm._buf = None
        shm._mmap = None
        if shm._fd >= 0:
            os.close(shm._fd)
            shm._fd = -1
    except AttributeError:  # unexpected stdlib layout: leak-until-exit
        _shm_keepalive.append(shm)
    out: Buffers = {}
    for key, dtype, shape, off in meta:
        count = int(np.prod(shape, dtype=np.int64))
        a = np.frombuffer(buf, dtype=np.dtype(dtype), count=count,
                          offset=off).reshape(shape)
        a.flags.writeable = False
        out[key] = a
    return out


# ----------------------------------------------------------------------
# Wire format: inline-or-shm transport envelope
# ----------------------------------------------------------------------
#: A picklable transport envelope for one buffer dict — either
#: ``("inline", buffers)`` or ``("shm", name, meta)``.  Used for *both*
#: directions of the worker-pool protocol: subdomain payloads going out
#: and refined meshes coming back.
Wire = Tuple


def buffers_to_wire(buffers: Buffers, *,
                    min_bytes: Optional[int] = None) -> Wire:
    """Wrap a buffer dict for cross-process shipping.

    Dicts at or above ``min_bytes`` (default :data:`SHM_MIN_BYTES`) go
    through a shared-memory segment — only the name + layout tuple is
    pickled; smaller dicts ship inline where the pickle is cheaper than
    a segment round trip.  Falls back to inline when ``/dev/shm`` is
    unusable (tiny containers) rather than fail.
    """
    threshold = SHM_MIN_BYTES if min_bytes is None else min_bytes
    if buffers_nbytes(buffers) >= threshold:
        try:
            name, meta = buffers_to_shm(buffers)
            return ("shm", name, meta)
        except OSError:
            pass
    return ("inline", buffers)


def wire_to_buffers(wire: Wire) -> Buffers:
    """Unwrap a :func:`buffers_to_wire` envelope (consumes shm wires:
    the segment is unlinked on attach and freed with the last view)."""
    kind = wire[0]
    if kind == "inline":
        return wire[1]
    if kind == "shm":
        return buffers_from_shm(wire[1], wire[2])
    raise SerdeError(f"unknown wire kind {kind!r}")


def wire_nbytes(wire: Wire) -> int:
    """Payload size of a wire envelope without consuming it."""
    if wire[0] == "inline":
        return buffers_nbytes(wire[1])
    return int(sum(
        int(np.prod(shape, dtype=np.int64)) * np.dtype(dtype).itemsize
        for _key, dtype, shape, _off in wire[2]
    ))


def discard_wire(wire: Wire) -> None:
    """Free a wire envelope *without* consuming its contents.

    The worker pool calls this on the two paths where an envelope is
    created but never unwrapped: a payload wire whose worker died before
    attaching, and a stale result wire from an aborted call.  Inline
    wires need nothing; shm wires attach + unlink so the kernel frees
    the segment (already-consumed or never-created names are fine).
    """
    if wire[0] != "shm":
        return
    from multiprocessing import shared_memory

    try:
        shm = shared_memory.SharedMemory(name=wire[1])
    except FileNotFoundError:
        return  # consumed (receiver unlinked on attach) or never created
    try:
        shm.unlink()
    except FileNotFoundError:
        pass
    shm.close()


# ----------------------------------------------------------------------
# TriMesh
# ----------------------------------------------------------------------
def pack_mesh(mesh) -> Buffers:
    """Flatten a :class:`TriMesh` (exact round trip)."""
    return {
        "points": _f64(mesh.points, 2),
        "triangles": _i32(mesh.triangles).reshape(-1, 3),
        "segments": _i32(mesh.segments).reshape(-1, 2),
    }


def unpack_mesh(buffers: Buffers):
    from ..delaunay.mesh import TriMesh

    return TriMesh(
        points=_f64(buffers["points"], 2),
        triangles=_i32(buffers["triangles"]).reshape(-1, 3),
        segments=_i32(buffers["segments"]).reshape(-1, 2),
    )


# ----------------------------------------------------------------------
# Metric fields
# ----------------------------------------------------------------------
def pack_metric(field) -> Buffers:
    """Flatten a :class:`repro.metric.MetricField` (exact round trip).

    Tensors travel in the compact ``[m11, m12, m22]`` representation the
    field already stores, so pack/unpack is a pure memory copy — no
    eigendecomposition or log mapping on the wire path.
    """
    return {
        "points": _f64(field.points, 2),
        "tensors": _f64(field.tensors, 3),
    }


def unpack_metric(buffers: Buffers):
    from ..metric import MetricField

    return MetricField(
        points=_f64(buffers["points"], 2),
        tensors=_f64(buffers["tensors"], 3),
    )


# ----------------------------------------------------------------------
# DecoupledSubdomain
# ----------------------------------------------------------------------
def pack_subdomain(sub) -> Buffers:
    """Flatten a :class:`DecoupledSubdomain`.

    The outer ring and every hole ring are concatenated into one
    ``(n, 2)`` coordinate array; ``ring_offsets[i]:ring_offsets[i+1]``
    slices ring ``i`` back out (ring 0 is the outer border).
    """
    rings = [_f64(sub.ring, 2)] + [_f64(hr, 2) for hr in sub.hole_rings]
    offsets = np.zeros(len(rings) + 1, dtype=np.int32)
    np.cumsum([len(r) for r in rings], out=offsets[1:])
    holes = (_f64(sub.holes, 2) if sub.holes
             else np.empty((0, 2), dtype=np.float64))
    return {
        "coords": np.vstack(rings),
        "ring_offsets": offsets,
        "holes": holes,
        "meta": np.asarray([float(sub.level), float(sub.est_triangles)],
                           dtype=np.float64),
    }


def unpack_subdomain(buffers: Buffers):
    from ..core.decouple import DecoupledSubdomain

    coords = _f64(buffers["coords"], 2)
    offsets = _i32(buffers["ring_offsets"])
    rings = [np.ascontiguousarray(coords[offsets[i]:offsets[i + 1]])
             for i in range(len(offsets) - 1)]
    holes = _f64(buffers["holes"], 2)
    level, est = (float(x) for x in buffers["meta"])
    return DecoupledSubdomain(
        ring=rings[0],
        level=int(level),
        est_triangles=est,
        hole_rings=rings[1:],
        holes=[(float(x), float(y)) for x, y in holes],
    )


# ----------------------------------------------------------------------
# PSLG
# ----------------------------------------------------------------------
def pack_pslg(pslg) -> Buffers:
    """Flatten a :class:`PSLG`: points, loop index table, flags, names."""
    loop_idx = (np.concatenate([lp.indices for lp in pslg.loops])
                if pslg.loops else np.empty(0, dtype=np.int64))
    offsets = np.zeros(len(pslg.loops) + 1, dtype=np.int32)
    np.cumsum([len(lp) for lp in pslg.loops], out=offsets[1:])
    names = "\n".join(lp.name for lp in pslg.loops)
    return {
        "points": _f64(pslg.points, 2),
        "loop_indices": _i32(loop_idx),
        "loop_offsets": offsets,
        "loop_is_body": np.asarray([lp.is_body for lp in pslg.loops],
                                   dtype=np.int32),
        "loop_names": _text(names),
    }


def unpack_pslg(buffers: Buffers):
    from ..geometry.pslg import PSLG, Loop

    idx = np.asarray(buffers["loop_indices"], dtype=np.int64)
    offsets = _i32(buffers["loop_offsets"])
    is_body = _i32(buffers["loop_is_body"])
    names = _untext(buffers["loop_names"]).split("\n") if len(
        buffers["loop_names"]) else [""] * (len(offsets) - 1)
    loops: List[Loop] = [
        Loop(idx[offsets[i]:offsets[i + 1]], name=names[i],
             is_body=bool(is_body[i]))
        for i in range(len(offsets) - 1)
    ]
    return PSLG(_f64(buffers["points"], 2), loops)


# ----------------------------------------------------------------------
# Sizing functions
# ----------------------------------------------------------------------
_SIZING_UNIFORM = 0
_SIZING_RADIAL = 1
_SIZING_GRADED = 2


def pack_sizing(sizing) -> Buffers:
    """Flatten a sizing function (kind code + parameters)."""
    from ..sizing.functions import (GradedDistanceSizing, RadialSizing,
                                    UniformSizing)

    if isinstance(sizing, UniformSizing):
        kind, params, pts = _SIZING_UNIFORM, [sizing.area], None
    elif isinstance(sizing, RadialSizing):
        kind = _SIZING_RADIAL
        params = [sizing.center[0], sizing.center[1], sizing.h0,
                  sizing.grading, sizing.h_max]
        pts = None
    elif isinstance(sizing, GradedDistanceSizing):
        kind = _SIZING_GRADED
        params = [sizing.h0, sizing.grading, sizing.h_max]
        pts = sizing._pts
    else:
        raise SerdeError(
            f"sizing function {type(sizing).__name__} is not serializable "
            "(it wraps arbitrary Python callables); use the serial or "
            "threads backend, or one of Uniform/Radial/GradedDistanceSizing"
        )
    return {
        "kind": np.asarray([kind], dtype=np.int32),
        "params": np.asarray(params, dtype=np.float64),
        "points": (_f64(pts, 2) if pts is not None
                   else np.empty((0, 2), dtype=np.float64)),
    }


def unpack_sizing(buffers: Buffers):
    from ..sizing.functions import (GradedDistanceSizing, RadialSizing,
                                    UniformSizing)

    kind = int(buffers["kind"][0])
    params = [float(x) for x in buffers["params"]]
    if kind == _SIZING_UNIFORM:
        return UniformSizing(params[0])
    if kind == _SIZING_RADIAL:
        cx, cy, h0, grading, h_max = params
        return RadialSizing((cx, cy), h0, grading=grading, h_max=h_max)
    if kind == _SIZING_GRADED:
        h0, grading, h_max = params
        return GradedDistanceSizing(_f64(buffers["points"], 2), h0,
                                    grading=grading, h_max=h_max)
    raise SerdeError(f"unknown sizing kind code {kind}")


# ----------------------------------------------------------------------
# BoundaryLayerConfig
# ----------------------------------------------------------------------
_BL_FIELDS = (
    "first_spacing", "growth_ratio", "max_layers", "max_height",
    "large_angle_deg", "cusp_angle_deg", "max_ray_angle_deg",
    "isotropy_factor", "truncation_factor",
)


def pack_bl_config(config) -> Buffers:
    """Flatten a :class:`BoundaryLayerConfig` (numeric fields + mode)."""
    if config.growth is not None:
        raise SerdeError(
            "BoundaryLayerConfig with a custom growth-function override is "
            "not serializable; use the serial or threads backend, or set "
            "first_spacing/growth_ratio instead"
        )
    return {
        "params": np.asarray([float(getattr(config, f)) for f in _BL_FIELDS],
                             dtype=np.float64),
        "triangulation": _text(config.triangulation),
    }


def unpack_bl_config(buffers: Buffers):
    from ..core.bl_pipeline import BoundaryLayerConfig

    values = dict(zip(_BL_FIELDS, (float(x) for x in buffers["params"])))
    values["max_layers"] = int(values["max_layers"])
    return BoundaryLayerConfig(triangulation=_untext(buffers["triangulation"]),
                               **values)


# ----------------------------------------------------------------------
# MeshConfig (the push-button pipeline's full input, BL config nested)
# ----------------------------------------------------------------------
_MESH_FIELDS = (
    "farfield_chords", "h0", "grading", "h_max_chords",
    "nearbody_margin_chords", "target_subdomains", "quality_bound",
    "max_steiner",
)

#: MeshConfig fields where ``None`` is legal; encoded as NaN (a float
#: parameter can never legitimately be NaN, so the mapping is lossless).
_MESH_OPTIONAL = ("h0", "h_max_chords")


def pack_mesh_config(config) -> Buffers:
    """Flatten a :class:`~repro.core.pipeline.MeshConfig` (BL nested).

    Together with :func:`pack_pslg` this captures the *complete* input
    of ``generate_mesh`` — which is why the service's cache key is a
    canonical hash over exactly these buffers.
    """
    params = []
    for name in _MESH_FIELDS:
        value = getattr(config, name)
        params.append(float("nan") if value is None else float(value))
    out = {"params": np.asarray(params, dtype=np.float64)}
    out.update(nest("bl.", pack_bl_config(config.bl)))
    return out


def unpack_mesh_config(buffers: Buffers):
    from ..core.pipeline import MeshConfig

    values = dict(zip(_MESH_FIELDS, (float(x) for x in buffers["params"])))
    for name in _MESH_OPTIONAL:
        if np.isnan(values[name]):
            values[name] = None
    values["target_subdomains"] = int(values["target_subdomains"])
    values["max_steiner"] = int(values["max_steiner"])
    return MeshConfig(bl=unpack_bl_config(unnest("bl.", buffers)), **values)
