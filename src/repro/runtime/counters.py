"""Pipeline observability: phase timers, kernel counters, histograms.

Every performance claim in this reproduction funnels through the
incremental Delaunay kernel, so regressions need to be *visible* before
they need to be fixed.  This module is the single place where the hot
paths report what they did:

* **Phase wall time** — named stages of :func:`repro.core.pipeline.
  generate_mesh` (and anything else that opens a :func:`phase` block).
* **Kernel counters** — the :class:`~repro.delaunay.kernel.Triangulation`
  accumulates plain-integer statistics (walk steps, cavity sizes,
  filtered-predicate escalations) with near-zero overhead; callers
  *absorb* them here when a kernel finishes.
* **Event counters** — free-form named tallies (Steiner points, segment
  splits, recovery flips, ...).

The layer is **opt-in and ambient**: :func:`use_counters` installs a
:class:`Counters` sink for the current process; code paths call
:func:`current` and skip reporting when it returns ``None``.  The ambient
sink is shared across threads (absorption is lock-protected) so the SPMD
threads backend aggregates into one report.

Nothing here is imported by the kernel's hot loops — the kernel counts
into its own attributes and this module only aggregates, so profiling
cost is paid at phase granularity, not per predicate call.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

__all__ = [
    "Histogram",
    "KernelCounters",
    "Counters",
    "current",
    "use_counters",
    "phase",
    "timed",
    "monotonic",
    "monotonic_ns",
]


def monotonic() -> float:
    """The sanctioned monotonic-clock read point (lint rule R5).

    Scheduling code that needs *deadline* arithmetic — worker-pool TTL
    reaping, hang detection — reads the clock here instead of importing
    ``time`` directly, so every wall-clock access in the package stays
    in this module.  Profiling still goes through :func:`timed`/
    :func:`phase`; this helper is for liveness decisions only.
    """
    return time.monotonic()


def monotonic_ns() -> int:
    """Integer-nanosecond sibling of :func:`monotonic` (lint rule R5).

    Hot kernels accumulate per-phase budgets in integer nanoseconds to
    avoid float rounding across millions of samples; they read the
    clock here for the same reason scheduling code uses
    :func:`monotonic` — one auditable wall-clock funnel.
    """
    return time.monotonic_ns()


class Histogram:
    """Fixed-bucket integer histogram (last bucket catches overflow).

    Buckets are unit-width: bucket ``i`` counts value ``i`` for
    ``i < n_buckets - 1``; the final bucket counts everything larger.
    Cheap enough to update once per kernel insertion.
    """

    __slots__ = ("buckets", "count", "total")

    def __init__(self, n_buckets: int = 32) -> None:
        self.buckets: List[int] = [0] * n_buckets
        self.count = 0
        self.total = 0

    def add(self, value: int) -> None:
        n = len(self.buckets)
        self.buckets[value if value < n - 1 else n - 1] += 1
        self.count += 1
        self.total += value

    def merge_counts(self, buckets: List[int], count: int, total: int) -> None:
        """Merge a raw bucket array (as kept by the kernel) into this."""
        mine = self.buckets
        n = len(mine)
        for i, b in enumerate(buckets):
            if b:
                mine[i if i < n - 1 else n - 1] += b
        self.count += count
        self.total += total

    def merge(self, other: "Histogram") -> None:
        self.merge_counts(other.buckets, other.count, other.total)

    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> int:
        """Approximate q-th percentile (bucket lower bound), q in [0, 100]."""
        if not self.count:
            return 0
        target = q / 100.0 * self.count
        acc = 0
        for i, b in enumerate(self.buckets):
            acc += b
            if acc >= target:
                return i
        return len(self.buckets) - 1

    def summary(self) -> str:
        top = len(self.buckets) - 1
        p95 = self.percentile(95.0)
        return (
            f"mean {self.mean():.2f}  p50 {self.percentile(50.0)}  "
            f"p95 {p95 if p95 < top else f'{top}+'}  n {self.count}"
        )


class KernelCounters:
    """Aggregated :class:`Triangulation` statistics.

    ``absorb`` pulls the plain-int ``stat_*`` attributes off a kernel
    instance; repeated absorption of *different* kernels accumulates
    (each subdomain refinement contributes its own triangulation).
    """

    __slots__ = (
        "inserts", "locates", "walk_steps", "brute_locates", "grid_seeds",
        "cavity_triangles", "flips",
        "orient_fast", "orient_exact", "incircle_fast", "incircle_exact",
        "batch_calls", "batch_entries", "batch_points", "conflict_retries",
        "finalize_ns",
        "walk_hist", "cavity_hist",
    )

    def __init__(self) -> None:
        self.inserts = 0
        self.locates = 0
        self.walk_steps = 0
        self.brute_locates = 0
        self.grid_seeds = 0
        self.cavity_triangles = 0
        self.flips = 0
        self.orient_fast = 0
        self.orient_exact = 0
        self.incircle_fast = 0
        self.incircle_exact = 0
        self.batch_calls = 0
        self.batch_entries = 0
        self.batch_points = 0
        self.conflict_retries = 0
        self.finalize_ns = 0
        self.walk_hist = Histogram(32)
        self.cavity_hist = Histogram(32)

    def absorb(self, tri) -> None:
        """Accumulate the counters of a finished ``Triangulation``."""
        self.inserts += tri.stat_inserts
        self.locates += tri.stat_locates
        self.walk_steps += tri.stat_walk_steps
        self.brute_locates += tri.stat_brute_locates
        self.grid_seeds += tri.stat_grid_seeds
        self.cavity_triangles += tri.stat_cavity_tris
        self.flips += tri.stat_flips
        self.orient_fast += tri.stat_orient_fast
        self.orient_exact += tri.stat_orient_exact
        self.incircle_fast += tri.stat_incircle_fast
        self.incircle_exact += tri.stat_incircle_exact
        self.batch_calls += tri.stat_batch_calls
        self.batch_entries += tri.stat_batch_entries
        self.batch_points += tri.stat_batch_points
        self.conflict_retries += tri.stat_conflict_retries
        self.finalize_ns += tri.stat_finalize_ns
        self.walk_hist.merge_counts(
            tri.stat_walk_hist, tri.stat_locates, tri.stat_walk_steps)
        self.cavity_hist.merge_counts(
            tri.stat_cavity_hist, tri.stat_inserts, tri.stat_cavity_tris)

    def merge(self, other: "KernelCounters") -> None:
        for name in self.__slots__:
            if name in ("walk_hist", "cavity_hist"):
                getattr(self, name).merge(getattr(other, name))
            else:
                setattr(self, name, getattr(self, name) + getattr(other, name))

    # ------------------------------------------------------------------
    # Cross-process transport (plain ints/lists only — compactly
    # picklable control-plane data, merged by the executor layer).
    # ------------------------------------------------------------------
    def to_plain(self) -> Dict[str, object]:
        """Plain-data form for shipping across a process boundary."""
        out: Dict[str, object] = {}
        for name in self.__slots__:
            if name in ("walk_hist", "cavity_hist"):
                h = getattr(self, name)
                out[name] = {"buckets": list(h.buckets), "count": h.count,
                             "total": h.total}
            else:
                out[name] = getattr(self, name)
        return out

    def merge_plain(self, data: Dict[str, object]) -> None:
        """Merge a :meth:`to_plain` snapshot (e.g. from a worker process)."""
        for name in self.__slots__:
            if name not in data:
                continue
            if name in ("walk_hist", "cavity_hist"):
                h = data[name]
                getattr(self, name).merge_counts(
                    list(h["buckets"]), int(h["count"]), int(h["total"]))
            else:
                setattr(self, name, getattr(self, name) + int(data[name]))

    # ------------------------------------------------------------------
    @property
    def orient_tests(self) -> int:
        return self.orient_fast + self.orient_exact

    @property
    def incircle_tests(self) -> int:
        return self.incircle_fast + self.incircle_exact

    @property
    def exact_escalation_rate(self) -> float:
        """Fraction of filtered predicate tests escalated to exact
        rational arithmetic (the metric the filter design targets)."""
        total = self.orient_tests + self.incircle_tests
        if not total:
            return 0.0
        return (self.orient_exact + self.incircle_exact) / total

    def as_dict(self) -> Dict[str, float]:
        return {
            "inserts": self.inserts,
            "locates": self.locates,
            "walk_steps": self.walk_steps,
            "walk_steps_mean": self.walk_hist.mean(),
            "walk_steps_p95": self.walk_hist.percentile(95.0),
            "brute_locates": self.brute_locates,
            "grid_seeds": self.grid_seeds,
            "cavity_triangles": self.cavity_triangles,
            "cavity_size_mean": self.cavity_hist.mean(),
            "cavity_size_p95": self.cavity_hist.percentile(95.0),
            "flips": self.flips,
            "orient_tests": self.orient_tests,
            "orient_exact": self.orient_exact,
            "incircle_tests": self.incircle_tests,
            "incircle_exact": self.incircle_exact,
            "batch_calls": self.batch_calls,
            "batch_entries": self.batch_entries,
            "batch_points": self.batch_points,
            "conflict_retries": self.conflict_retries,
            "finalize_ns": self.finalize_ns,
            "exact_escalation_rate": self.exact_escalation_rate,
        }

    def report(self) -> str:
        lines = [
            f"  inserts            {self.inserts}",
            f"  walk steps         {self.walk_hist.summary()}",
            f"  cavity size        {self.cavity_hist.summary()}",
            f"  grid-seeded walks  {self.grid_seeds}"
            f"   brute-force locates {self.brute_locates}",
            f"  orient tests       {self.orient_tests}"
            f"  (exact {self.orient_exact})",
            f"  incircle tests     {self.incircle_tests}"
            f"  (exact {self.incircle_exact})",
            f"  batched entries    {self.batch_entries}"
            f"  in {self.batch_calls} batch calls",
            f"  batch-inserted pts {self.batch_points}"
            f"  (conflict retries {self.conflict_retries})",
            f"  flips              {self.flips}",
            f"  finalize time      {self.finalize_ns / 1e6:.2f} ms",
            f"  exact escalation   {self.exact_escalation_rate:.4%}",
        ]
        return "\n".join(lines)


class Counters:
    """Process-wide profiling sink: phases + kernel stats + named events."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.phases: Dict[str, float] = {}
        self.phase_calls: Dict[str, int] = {}
        self.kernel = KernelCounters()
        self.events: Dict[str, int] = {}
        #: raw per-observation sample streams (seconds, bytes, ...) —
        #: the measurement source for simulator calibration
        #: (:func:`repro.runtime.simulator.calibrate_from_counters`).
        self.samples: Dict[str, List[float]] = {}

    # ------------------------------------------------------------------
    def note_phase(self, name: str, dt: float) -> None:
        """Record ``dt`` seconds against phase ``name`` (thread-safe)."""
        with self._lock:
            self.phases[name] = self.phases.get(name, 0.0) + dt
            self.phase_calls[name] = self.phase_calls.get(name, 0) + 1

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.note_phase(name, time.perf_counter() - t0)

    def absorb_kernel(self, tri) -> None:
        with self._lock:
            self.kernel.absorb(tri)

    def absorb_finalize(self, tri) -> None:
        """Accumulate (and reset) a kernel's finalize time.

        ``to_mesh`` runs *after* the refinement loop has already
        absorbed the kernel's insert-path counters, so the finalize cost
        is collected separately; resetting the stat keeps a later full
        ``absorb`` from double-counting it.
        """
        with self._lock:
            self.kernel.finalize_ns += tri.stat_finalize_ns
        tri.stat_finalize_ns = 0

    def incr(self, name: str, n: int = 1) -> None:
        with self._lock:
            self.events[name] = self.events.get(name, 0) + n

    def observe(self, name: str, value: float) -> None:
        """Append one raw observation to the ``name`` sample stream.

        Unlike :meth:`incr` (a running total) the individual values are
        kept: the executor records per-item (seconds, bytes) pairs and
        the serde layer records shm transfer timings, which the
        simulator fits its network/cost models against.
        """
        with self._lock:
            self.samples.setdefault(name, []).append(float(value))

    # ------------------------------------------------------------------
    # Cross-process aggregation: a worker process profiles into its own
    # sink, ships ``snapshot()`` (plain data) back over the result
    # channel, and the parent folds it in with ``merge_snapshot`` — so
    # ``--profile``/``--stats-json`` see one merged report regardless of
    # which executor backend did the work.
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """Plain-data snapshot of everything this sink accumulated."""
        with self._lock:
            return {
                "phases": dict(self.phases),
                "phase_calls": dict(self.phase_calls),
                "kernel": self.kernel.to_plain(),
                "events": dict(self.events),
                "samples": {k: list(v) for k, v in self.samples.items()},
            }

    def merge_snapshot(self, data: Dict[str, object]) -> None:
        """Merge a :meth:`snapshot` from another sink (thread-safe)."""
        with self._lock:
            for name, dt in data.get("phases", {}).items():
                self.phases[name] = self.phases.get(name, 0.0) + float(dt)
            for name, n in data.get("phase_calls", {}).items():
                self.phase_calls[name] = self.phase_calls.get(name, 0) + int(n)
            self.kernel.merge_plain(data.get("kernel", {}))
            for name, n in data.get("events", {}).items():
                self.events[name] = self.events.get(name, 0) + int(n)
            for name, values in data.get("samples", {}).items():
                self.samples.setdefault(name, []).extend(
                    float(v) for v in values)

    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, object]:
        return {
            "phases_s": dict(self.phases),
            "kernel": self.kernel.as_dict(),
            "events": dict(self.events),
            # Samples summarised (raw streams stay on ``self.samples``).
            "samples": {
                name: {
                    "n": len(vals),
                    "total": sum(vals),
                    "mean": sum(vals) / len(vals) if vals else 0.0,
                }
                for name, vals in self.samples.items()
            },
        }

    def report(self) -> str:
        lines = ["== profile =="]
        if self.phases:
            lines.append("phases:")
            width = max(len(k) for k in self.phases)
            for name, dt in self.phases.items():
                calls = self.phase_calls.get(name, 1)
                extra = f"  ({calls} calls)" if calls > 1 else ""
                lines.append(f"  {name:<{width}}  {dt:8.3f}s{extra}")
        lines.append("kernel:")
        lines.append(self.kernel.report())
        if self.events:
            lines.append("events:")
            width = max(len(k) for k in self.events)
            for name in sorted(self.events):
                lines.append(f"  {name:<{width}}  {self.events[name]}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Ambient sink
# ----------------------------------------------------------------------
_current: Optional[Counters] = None


def current() -> Optional[Counters]:
    """The installed profiling sink, or ``None`` when profiling is off."""
    return _current


@contextmanager
def use_counters(counters: Optional[Counters] = None) -> Iterator[Counters]:
    """Install ``counters`` (or a fresh sink) as the ambient sink.

    Nesting replaces the sink for the dynamic extent of the block; the
    previous sink is restored on exit.
    """
    global _current
    sink = counters if counters is not None else Counters()
    prev = _current
    _current = sink
    try:
        yield sink
    finally:
        _current = prev


@contextmanager
def phase(name: str) -> Iterator[None]:
    """Time a named phase against the ambient sink (no-op when off)."""
    sink = _current
    if sink is None:
        yield
    else:
        with sink.phase(name):
            yield


class timed:
    """Wall-time a block *and* report it as a phase to the ambient sink.

    The single sanctioned wall-clock read point outside this module (lint
    rule R5): algorithm code that needs an elapsed figure — the pipeline's
    per-stage ``timings`` dict, the CLI's total — opens a ``timed`` block
    instead of pairing raw ``time.perf_counter()`` calls, so ``--profile``
    can never miss a stage that user-facing timings report.

    >>> with timed("refinement") as t:
    ...     ...
    >>> t.elapsed  # seconds, also accumulated into the ambient Counters
    """

    __slots__ = ("name", "elapsed", "_t0")

    def __init__(self, name: str) -> None:
        self.name = name
        self.elapsed = 0.0

    def __enter__(self) -> "timed":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self._t0
        sink = _current
        if sink is not None:
            sink.note_phase(self.name, self.elapsed)
