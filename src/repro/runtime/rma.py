"""Remote-memory-access window (the MPI_Win substitute).

Section II.F/III: "A global memory window is allocated on the root
process as an array that will hold the work load estimates for each
process.  Each process will periodically update its work load estimate"
via ``MPI_Put``; a hungry process fetches the whole window with
``MPI_Get`` and picks the most loaded victim.

The in-process backend realises the window as a shared NumPy array
guarded by a lock: ``put``/``get``/``accumulate``/``fetch_and_op`` have
MPI passive-target semantics (atomic with respect to each other, no
involvement of the host rank — the defining property of RMA the paper
exploits for zero-copy, low-latency transfers).
"""

from __future__ import annotations

import threading
from typing import Callable, Optional, Tuple

import numpy as np

__all__ = ["Window"]


class Window:
    """A shared 1D float64 window with passive-target RMA semantics."""

    def __init__(self, size: int, host_rank: int = 0) -> None:
        if size < 1:
            raise ValueError("window needs at least one slot")
        self.host_rank = host_rank
        self._data = np.zeros(size, dtype=np.float64)
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._data)

    def put(self, value: float, offset: int) -> None:
        """MPI_Put of a single value (lock/put/unlock epoch)."""
        with self._lock:
            self._data[offset] = value

    def put_many(self, values: np.ndarray, offset: int = 0) -> None:
        values = np.asarray(values, dtype=np.float64)
        with self._lock:
            self._data[offset:offset + len(values)] = values

    def get(self, offset: Optional[int] = None) -> np.ndarray:
        """MPI_Get: snapshot the window (or one slot) into local memory."""
        with self._lock:
            if offset is None:
                return self._data.copy()
            return self._data[offset:offset + 1].copy()

    def accumulate(self, value: float, offset: int,
                   op: Callable[[float, float], float] = None) -> None:
        """MPI_Accumulate (default op: sum), atomic."""
        with self._lock:
            if op is None:
                self._data[offset] += value
            else:
                self._data[offset] = op(float(self._data[offset]), value)

    def fetch_and_op(self, value: float, offset: int) -> float:
        """MPI_Fetch_and_op (sum): returns the pre-update value, atomic.

        The atomic read-modify-write used for distributed termination
        counting (outstanding-work counter).
        """
        with self._lock:
            old = float(self._data[offset])
            self._data[offset] = old + value
            return old

    def compare_and_swap(self, expect: float, desired: float,
                         offset: int) -> float:
        with self._lock:
            old = float(self._data[offset])
            if old == expect:
                self._data[offset] = desired
            return old
