"""Remote-memory-access window (the MPI_Win substitute).

Section II.F/III: "A global memory window is allocated on the root
process as an array that will hold the work load estimates for each
process.  Each process will periodically update its work load estimate"
via ``MPI_Put``; a hungry process fetches the whole window with
``MPI_Get`` and picks the most loaded victim.

The in-process backend realises the window as a shared NumPy array
guarded by a lock: ``put``/``get``/``accumulate``/``fetch_and_op`` have
MPI passive-target semantics (atomic with respect to each other, no
involvement of the host rank — the defining property of RMA the paper
exploits for zero-copy, low-latency transfers).

``local_load``/``local_store`` model MPI's *local* access to one's own
window memory — direct loads/stores with **no** lock epoch, legal in MPI
only when other synchronization orders them against remote epochs.  All
window operations are instrumented for :mod:`repro.lint.tsan`
(``REPRO_SANITIZE=1``), which verifies that discipline at runtime.
"""

from __future__ import annotations

import itertools
import threading
from typing import Callable, Optional, Tuple

import numpy as np

from ..lint import tsan

__all__ = ["Window"]

#: process-unique window ids for sanitizer location keys.  ``id(self)``
#: is NOT suitable: a garbage-collected window's address can be reused
#: by a later one, and the detector would then see the dead window's
#: unordered accesses as races on the new window's slots.
_WINDOW_IDS = itertools.count()


class Window:
    """A shared 1D float64 window with passive-target RMA semantics."""

    def __init__(self, size: int, host_rank: int = 0) -> None:
        if size < 1:
            raise ValueError("window needs at least one slot")
        self.host_rank = host_rank
        self._data = np.zeros(size, dtype=np.float64)
        self._lock = threading.Lock()
        self._win_id = next(_WINDOW_IDS)

    def _slot(self, offset: int) -> Tuple[str, int, int]:
        """Sanitizer location key for one window slot."""
        return ("rma.win", self._win_id, int(offset))

    def __len__(self) -> int:
        return len(self._data)  # lint: disable=R6 -- window size is immutable after construction; no lock needed

    def put(self, value: float, offset: int) -> None:
        """MPI_Put of a single value (lock/put/unlock epoch)."""
        with self._lock:
            tsan.note_acquire(self._lock)
            tsan.note_access(self._slot(offset), True)
            self._data[offset] = value
            tsan.note_release(self._lock)

    def put_many(self, values: np.ndarray, offset: int = 0) -> None:
        values = np.asarray(values, dtype=np.float64)
        with self._lock:
            tsan.note_acquire(self._lock)
            for i in range(offset, offset + len(values)):
                tsan.note_access(self._slot(i), True)
            self._data[offset:offset + len(values)] = values
            tsan.note_release(self._lock)

    def get(self, offset: Optional[int] = None) -> np.ndarray:
        """MPI_Get: snapshot the window (or one slot) into local memory."""
        with self._lock:
            tsan.note_acquire(self._lock)
            try:
                if offset is None:
                    for i in range(len(self._data)):
                        tsan.note_access(self._slot(i), False)
                    return self._data.copy()
                tsan.note_access(self._slot(offset), False)
                return self._data[offset:offset + 1].copy()
            finally:
                tsan.note_release(self._lock)

    def accumulate(self, value: float, offset: int,
                   op: Callable[[float, float], float] = None) -> None:
        """MPI_Accumulate (default op: sum), atomic."""
        with self._lock:
            tsan.note_acquire(self._lock)
            tsan.note_access(self._slot(offset), True)
            if op is None:
                self._data[offset] += value
            else:
                self._data[offset] = op(float(self._data[offset]), value)
            tsan.note_release(self._lock)

    def fetch_and_op(self, value: float, offset: int) -> float:
        """MPI_Fetch_and_op (sum): returns the pre-update value, atomic.

        The atomic read-modify-write used for distributed termination
        counting (outstanding-work counter).
        """
        with self._lock:
            tsan.note_acquire(self._lock)
            tsan.note_access(self._slot(offset), True)
            old = float(self._data[offset])
            self._data[offset] = old + value
            tsan.note_release(self._lock)
            return old

    def compare_and_swap(self, expect: float, desired: float,
                         offset: int) -> float:
        with self._lock:
            tsan.note_acquire(self._lock)
            tsan.note_access(self._slot(offset), True)
            old = float(self._data[offset])
            if old == expect:
                self._data[offset] = desired
            tsan.note_release(self._lock)
            return old

    # ------------------------------------------------------------------
    # MPI-style local window access (deliberately NOT an RMA epoch).
    # ------------------------------------------------------------------
    def local_load(self, offset: int) -> float:
        """Direct load of one's own window memory, outside any epoch.

        In MPI this is only correct when other synchronization orders it
        against concurrent remote epochs; the runtime sanitizer checks
        that discipline (this is the access the racy test fixture uses).
        """
        tsan.note_access(self._slot(offset), False)
        return float(self._data[offset])  # lint: disable=R6 -- deliberately unlocked MPI local load; ordering checked by the runtime sanitizer

    def local_store(self, value: float, offset: int) -> None:
        """Direct store to one's own window memory, outside any epoch."""
        tsan.note_access(self._slot(offset), True)
        self._data[offset] = value  # lint: disable=R6 -- deliberately unlocked MPI local store; ordering checked by the runtime sanitizer
