"""Discrete-event cluster simulator for strong-scaling studies.

The paper's evaluation (Figs. 11-12) runs on 32 Infiniband nodes / 256
ranks.  That environment is simulated here: the *algorithmic* inputs —
per-subdomain meshing costs, payload sizes, the largest-first queue
discipline, RMA-window work stealing with a dual mesher/communicator
thread per rank — are the real ones, and the hardware is reduced to an
``alpha + bytes/beta`` network model (4X FDR Infiniband defaults) plus a
tree-structured initial distribution phase mirroring the recursive
decomposition/decoupling handoff ("subdomains are repeatedly decoupled
and sent to other processes until all processes have sufficient work").

Because each rank has a dedicated communicator thread, steal requests are
serviced at message arrival without preempting the mesher — exactly the
overlap the paper describes ("communication times only cause a slowdown
when the mesher thread runs out of work").
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["SimTask", "NetworkModel", "SimConfig", "SimResult", "simulate",
           "strong_scaling", "fit_network_model", "calibrate_from_counters"]


@dataclass
class SimTask:
    """One subdomain: meshing cost in seconds, transfer size in bytes."""

    cost: float
    size_bytes: float = 4096.0
    task_id: int = -1


@dataclass
class NetworkModel:
    """alpha-beta model: transfer time = latency + bytes / bandwidth."""

    latency: float = 2.0e-6          # Infiniband-class small-message latency
    bandwidth: float = 7.0e9         # ~56 Gbit/s 4X FDR

    def xfer(self, nbytes: float) -> float:
        return self.latency + nbytes / self.bandwidth

    def __post_init__(self) -> None:
        if self.latency < 0 or self.bandwidth <= 0:
            raise ValueError("invalid network model")


@dataclass
class SimConfig:
    network: NetworkModel = field(default_factory=NetworkModel)
    #: a rank requests work when its queue cost drops below this fraction
    #: of the mean per-rank load.
    steal_threshold_frac: float = 0.05
    #: retry back-off after an unsuccessful steal (window poll period).
    poll_period: float = 1.0e-4
    #: per-item fixed scheduling overhead on the mesher thread (queue pop,
    #: Triangle call setup) — the non-communication serial overhead.
    per_task_overhead: float = 0.0
    #: sequential-fraction work done on rank 0 before distribution
    #: (reading input, computing the initial quadrants, etc.).
    serial_setup: float = 0.0
    #: disable work stealing entirely (static distribution ablation).
    stealing: bool = True


@dataclass
class SimResult:
    makespan: float
    t_distribute: float
    busy: np.ndarray
    n_steal_attempts: int
    n_steal_successes: int
    n_messages: int
    total_work: float

    @property
    def efficiency_internal(self) -> float:
        """busy / (P * makespan): scheduling efficiency of the sim run."""
        P = len(self.busy)
        return float(self.busy.sum() / (P * self.makespan)) if P else 0.0


def _tree_distribute(tasks: List[SimTask], n_ranks: int, net: NetworkModel
                     ) -> Tuple[List[List[SimTask]], np.ndarray]:
    """Recursive halving of the task list from rank 0 (cost-balanced).

    Mirrors the decomposition/decoupling handoff: at each level every
    owning rank sends half of its queue (by cost) to a partner.  Returns
    the per-rank task lists and each rank's ready time.
    """
    queues: List[List[SimTask]] = [[] for _ in range(n_ranks)]
    ready = np.zeros(n_ranks, dtype=np.float64)
    queues[0] = sorted(tasks, key=lambda t: -t.cost)
    levels = int(math.ceil(math.log2(n_ranks))) if n_ranks > 1 else 0
    stride = n_ranks
    for _ in range(levels):
        stride //= 2
        if stride < 1:
            break
        for owner in range(0, n_ranks, 2 * stride):
            partner = owner + stride
            if partner >= n_ranks:
                continue
            q = queues[owner]
            # Greedy cost halving preserving the largest-first discipline.
            q_cost = sum(t.cost for t in q)
            keep: List[SimTask] = []
            send: List[SimTask] = []
            acc = 0.0
            for t in q:
                if acc + t.cost <= q_cost / 2.0 or not send:
                    send.append(t)
                    acc += t.cost
                else:
                    keep.append(t)
            # Owner keeps the first (largest) item.
            if keep == [] and len(send) > 1:
                keep = [send.pop(0)]
            elif send and send[0] is q[0] and len(send) > 1:
                keep.append(send.pop(0))
            nbytes = sum(t.size_bytes for t in send)
            t_arr = ready[owner] + net.xfer(nbytes)
            queues[owner] = sorted(keep, key=lambda t: -t.cost)
            queues[partner] = sorted(send, key=lambda t: -t.cost)
            ready[partner] = t_arr
            ready[owner] += net.latency  # send initiation cost
    return queues, ready


def simulate(tasks: Sequence[SimTask], n_ranks: int,
             config: Optional[SimConfig] = None,
             *, _record: Optional[list] = None,
             _record_steals: Optional[list] = None) -> SimResult:
    """Simulate the distributed meshing of ``tasks`` on ``n_ranks``.

    ``_record``/``_record_steals`` are internal hooks used by
    :mod:`repro.runtime.trace` to capture the execution timeline.
    """
    config = config or SimConfig()
    net = config.network
    tasks = [SimTask(t.cost, t.size_bytes, i) for i, t in enumerate(tasks)]
    if not tasks:
        raise ValueError("no tasks")
    if n_ranks < 1:
        raise ValueError("need at least one rank")
    total_work = sum(t.cost for t in tasks)
    threshold = config.steal_threshold_frac * total_work / n_ranks

    queues, ready = _tree_distribute(tasks, n_ranks, net)
    ready += config.serial_setup
    t_distribute = float(ready.max()) - config.serial_setup

    # Rank state.
    qcost = np.array([sum(t.cost for t in q) for q in queues])
    busy = np.zeros(n_ranks)
    finished_at = np.zeros(n_ranks)
    outstanding = len(tasks)
    n_attempts = 0
    n_success = 0
    n_msgs = 0
    running: List[Optional[SimTask]] = [None] * n_ranks
    # Ranks that found no steal victim: woken event-driven when work
    # appears (no busy polling — the communicator thread of a hungry rank
    # reacts to window updates, which happen when queues change).
    hungry: set = set()

    # Event heap: (time, seq, kind, rank, payload)
    events: List[Tuple[float, int, str, int, object]] = []
    seq = 0

    def push(t: float, kind: str, rank: int, payload=None) -> None:
        nonlocal seq
        heapq.heappush(events, (t, seq, kind, rank, payload))
        seq += 1

    def start_next(rank: int, now: float) -> None:
        nonlocal outstanding
        if queues[rank]:
            task = queues[rank].pop(0)  # largest first (kept sorted)
            qcost[rank] -= task.cost
            running[rank] = task
            dur = task.cost + config.per_task_overhead
            busy[rank] += dur
            if _record is not None:
                from .trace import BusyInterval

                _record.append(BusyInterval(rank, now, now + dur,
                                            task.task_id))
            push(now + dur, "task_done", rank, task)
        else:
            running[rank] = None
            if outstanding > 0 and config.stealing:
                push(now, "try_steal", rank)

    for r in range(n_ranks):
        push(float(ready[r]), "rank_ready", r)

    guard = 0
    max_events = 200 * len(tasks) + 10000 * n_ranks + 100000
    while events:
        guard += 1
        if guard > max_events:
            raise RuntimeError("simulation event budget exceeded")
        now, _, kind, rank, payload = heapq.heappop(events)
        if kind == "rank_ready":
            start_next(rank, now)
        elif kind == "task_done":
            outstanding -= 1
            finished_at[rank] = now
            start_next(rank, now)
            # Wake hungry ranks: either work remains stealable somewhere,
            # or the run is draining and they should re-check termination.
            if hungry and config.stealing:
                delay = config.poll_period  # window-update latency
                # Sorted wake order (lint R4): the steal schedule must not
                # depend on set hash order, or simulated timelines drift
                # between runs.
                for h in sorted(hungry):
                    push(now + delay, "try_steal", h)
                hungry.clear()
        elif kind == "try_steal":
            if running[rank] is not None or queues[rank]:
                continue
            if outstanding <= 0:
                finished_at[rank] = max(finished_at[rank], now)
                continue
            victims = np.where(qcost > max(threshold, 0.0))[0]
            if len(victims) == 0:
                hungry.add(rank)  # woken when a queue grows rich again
                continue
            victim = int(victims[np.argmax(qcost[victims])])
            n_attempts += 1
            n_msgs += 1
            push(now + net.latency, "steal_arrive", victim, rank)
        elif kind == "steal_arrive":
            thief = payload
            q = queues[rank]
            if q and qcost[rank] > threshold:
                # Donate the smallest half by cost (cheap to ship).
                q_sorted = sorted(q, key=lambda t: t.cost)
                donate: List[SimTask] = []
                acc = 0.0
                for t in q_sorted:
                    if acc + t.cost > qcost[rank] / 2.0 and donate:
                        break
                    donate.append(t)
                    acc += t.cost
                if len(donate) == len(q) and len(q) > 1:
                    donate = donate[:-1]
                donate_ids = {t.task_id for t in donate}
                queues[rank] = [t for t in q if t.task_id not in donate_ids]
                qcost[rank] -= sum(t.cost for t in donate)
                nbytes = sum(t.size_bytes for t in donate)
                n_msgs += 1
                push(now + net.xfer(nbytes), "work_arrive", thief, donate)
            else:
                n_msgs += 1
                push(now + net.latency, "work_arrive", thief, [])
        elif kind == "work_arrive":
            items = payload or []
            if items:
                n_success += 1
                if _record_steals is not None:
                    _record_steals.append(now)
                queues[rank].extend(items)
                queues[rank].sort(key=lambda t: -t.cost)
                qcost[rank] += sum(t.cost for t in items)
            if running[rank] is None:
                if queues[rank]:
                    start_next(rank, now)
                elif outstanding > 0:
                    push(now + config.poll_period, "try_steal", rank)
                else:
                    finished_at[rank] = max(finished_at[rank], now)

    makespan = float(finished_at.max())
    return SimResult(
        makespan=makespan,
        t_distribute=t_distribute,
        busy=busy,
        n_steal_attempts=n_attempts,
        n_steal_successes=n_success,
        n_messages=n_msgs,
        total_work=total_work,
    )


def strong_scaling(tasks: Sequence[SimTask], rank_counts: Sequence[int],
                   config: Optional[SimConfig] = None,
                   *, t_sequential: Optional[float] = None
                   ) -> Dict[int, Dict[str, float]]:
    """Speedup/efficiency table over ``rank_counts`` (paper Figs. 11-12).

    ``t_sequential`` is the best *sequential* mesher's time (Triangle in
    the paper); defaults to the total task work, i.e. a 100%-efficient
    sequential baseline.
    """
    base = t_sequential if t_sequential is not None else sum(
        t.cost for t in tasks)
    out: Dict[int, Dict[str, float]] = {}
    for p in rank_counts:
        res = simulate(tasks, p, config)
        speedup = base / res.makespan
        out[p] = {
            "makespan": res.makespan,
            "speedup": speedup,
            "efficiency": speedup / p,
            "distribute": res.t_distribute,
            "steals": float(res.n_steal_successes),
        }
    return out


# ----------------------------------------------------------------------
# Calibration from measured runtime counters
# ----------------------------------------------------------------------
#: phases on the parent rank that precede parallel refinement — their
#: measured sum is the simulator's ``serial_setup`` (rank-0 work before
#: the tree distribution starts).
SETUP_PHASES = ("boundary_layer", "nearbody_setup", "decoupling")

#: sanity clamps on the fitted alpha-beta model: latency no better than
#: 0.1 us, bandwidth between 1 MB/s (a pipe on a thrashing box) and
#: 1 TB/s (beyond any single NIC).
_MIN_LATENCY = 1.0e-7
_MIN_BANDWIDTH = 1.0e6
_MAX_BANDWIDTH = 1.0e12


def fit_network_model(nbytes: Sequence[float], seconds: Sequence[float],
                      *, default: Optional[NetworkModel] = None
                      ) -> NetworkModel:
    """Least-squares alpha-beta fit of measured transfer (size, time) pairs.

    ``seconds[i]`` is the wall time to ship ``nbytes[i]`` bytes (the serde
    layer records one pair per shared-memory segment it publishes).  A
    degree-1 polyfit gives ``time = intercept + slope * bytes``, i.e.
    ``latency = intercept`` and ``bandwidth = 1 / slope``, clamped to sane
    hardware ranges.  With fewer than two distinct sizes the line is
    unconstrained and ``default`` (4X FDR Infiniband) is returned; a
    non-positive slope (noise-dominated measurements) keeps the default
    bandwidth and uses the mean measured time as latency.
    """
    default = default if default is not None else NetworkModel()
    x = np.asarray(nbytes, dtype=np.float64)
    y = np.asarray(seconds, dtype=np.float64)
    if x.size != y.size:
        raise ValueError("nbytes/seconds sample streams differ in length")
    if x.size < 2 or np.unique(x).size < 2:
        return default
    # Theil-Sen estimate (median of pairwise slopes): the first segment
    # creation pays a page-fault warm-up penalty orders of magnitude
    # above steady state, and such a high-leverage outlier drags a
    # least-squares line; the median slope shrugs it off.  Sample
    # streams are small (one pair per shm publish), so the O(n^2) pair
    # set is cheap; cap it with a deterministic even subsample.
    if x.size > 200:
        idx = np.linspace(0, x.size - 1, 200).astype(np.intp)
        x, y = x[idx], y[idx]
    ii, jj = np.triu_indices(x.size, k=1)
    dx = x[jj] - x[ii]
    nz = dx != 0.0
    slope = float(np.median((y[jj] - y[ii])[nz] / dx[nz]))
    intercept = float(np.median(y - slope * x))
    if slope <= 0.0:
        return NetworkModel(latency=max(float(np.mean(y)), _MIN_LATENCY),
                            bandwidth=default.bandwidth)
    bandwidth = min(max(1.0 / float(slope), _MIN_BANDWIDTH), _MAX_BANDWIDTH)
    return NetworkModel(latency=max(float(intercept), _MIN_LATENCY),
                        bandwidth=bandwidth)


def calibrate_from_counters(sink, *, replicate_to: int = 12288,
                            seed: int = 7,
                            per_task_overhead: Optional[float] = None,
                            network: Optional[NetworkModel] = None,
                            ) -> Tuple[List[SimTask], SimConfig]:
    """Build a calibrated ``(tasks, SimConfig)`` from a measured run.

    ``sink`` is a :class:`repro.runtime.counters.Counters` that observed a
    real ``generate_mesh`` run (``with use_counters() as sink: ...``).
    Everything the simulator needs is read off the sink:

    - **task costs/sizes** from the ``executor.item_seconds`` /
      ``executor.item_bytes`` sample streams (one pair per refined
      subdomain, measured inside the worker);
    - **network model** fitted from the paired ``serde.shm_nbytes`` /
      ``serde.shm_seconds`` streams (shared-memory publish timings) via
      :func:`fit_network_model`, unless ``network`` overrides it;
    - **serial_setup** from the measured :data:`SETUP_PHASES` wall times
      (the parent-rank work before refinement can go wide);
    - **per_task_overhead** defaults to 1e-4 s — the queue-pop/dispatch
      cost per item, matching the reference Fig. 11 configuration —
      unless a measured value is passed in.

    The measured tasks are replicated with +/-20% multiplicative jitter
    (seeded, deterministic) to ``replicate_to`` items, modelling the
    paper's cluster-scale subdomain counts where refinement dominates the
    unreplicated setup phases.  Raises ``ValueError`` when the sink holds
    no per-item cost samples (the run did not go through the executor).
    """
    costs = list(sink.samples.get("executor.item_seconds", []))
    sizes = list(sink.samples.get("executor.item_bytes", []))
    if not costs:
        raise ValueError(
            "sink has no 'executor.item_seconds' samples — calibrate from "
            "a run that dispatched work through the executor layer")
    if len(sizes) < len(costs):
        sizes = sizes + [float(SimTask.size_bytes)] * (len(costs)
                                                       - len(sizes))
    base = [SimTask(cost=float(c), size_bytes=float(b))
            for c, b in zip(costs, sizes)]

    if network is None:
        network = fit_network_model(
            sink.samples.get("serde.shm_nbytes", []),
            sink.samples.get("serde.shm_seconds", []))
    serial_setup = float(sum(sink.phases.get(p, 0.0) for p in SETUP_PHASES))
    overhead = 1.0e-4 if per_task_overhead is None else per_task_overhead

    rng = np.random.default_rng(seed)
    factor = max(1, int(replicate_to) // len(base))
    tasks = [
        SimTask(cost=float(t.cost * rng.uniform(0.8, 1.25)),
                size_bytes=t.size_bytes)
        for _ in range(factor) for t in base
    ]
    config = SimConfig(network=network, serial_setup=serial_setup,
                       per_task_overhead=overhead)
    return tasks, config
