"""Gen/kill fixed-point solver over :mod:`repro.lint.cfg` graphs.

This is a forward *may* analysis: a fact is live at a node if some path
from its generating statement reaches that node without passing a kill.
The lifetime rules use facts of the form "statement L acquired a
resource bound to these names"; kills are releases/escapes.  A fact
still live at the CFG's ``EXIT`` or ``RAISE`` node leaks on that path.

Edge semantics (see the CFG module docstring for the rationale):

* ``flow`` edge from ``n`` carries ``(IN[n] - kill[n]) | gen[n]``.
* ``exc`` edge from ``n`` carries ``IN[n] - kill[n]`` — the raising
  statement did not produce its value, and a releasing statement is
  treated as atomic, so its own failure does not resurrect the fact.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from .cfg import CFG, FLOW

__all__ = ["solve", "live_at"]

FactSet = Set[int]


def solve(cfg: CFG, gen: Dict[int, FactSet],
          kill: Dict[int, FactSet]) -> List[FactSet]:
    """Run the fixed point; returns ``IN`` sets indexed by node id.

    ``gen``/``kill`` map node ids to fact-id sets; absent ids mean the
    empty set.  Runs in O(edges × facts) per iteration and converges
    because the transfer functions are monotone over a finite lattice.
    """
    empty: FactSet = set()
    n = len(cfg.nodes)
    in_sets: List[FactSet] = [set() for _ in range(n)]
    # Seed with every node: gen sets introduce facts even when nothing
    # upstream changed, so entry-only seeding would never visit them.
    worklist = list(range(n - 1, -1, -1))
    on_list = set(worklist)
    while worklist:
        idx = worklist.pop()
        on_list.discard(idx)
        node = cfg.nodes[idx]
        base = in_sets[idx] - kill.get(idx, empty)
        out_flow = base | gen.get(idx, empty)
        for succ, edge_kind in node.succ:
            carried = out_flow if edge_kind == FLOW else base
            if not carried <= in_sets[succ]:
                in_sets[succ] |= carried
                if succ not in on_list:
                    on_list.add(succ)
                    worklist.append(succ)
    return in_sets


def live_at(cfg: CFG, in_sets: List[FactSet]) -> Tuple[FactSet, FactSet]:
    """Facts reaching the normal exit and the raise exit, respectively."""
    return set(in_sets[cfg.exit]), set(in_sets[cfg.raise_exit])
