"""repro.lint — invariant-enforcing static analysis for the mesher.

The paper's correctness story rests on invariants the code can silently
break: exact-arithmetic escalation for geometric predicates (Section
II.B), deterministic subdomain interfaces after decoupling (Section
II.E), and data-race-free RMA-window work stealing (Section II.F).  The
dynamic invariant tests (``tests/delaunay/test_invariants.py``) check
*outputs*; this package checks *sources*: a custom AST pass that rejects
code shapes which would let those invariants rot.

Usage::

    python -m repro.lint src/ tests/            # human-readable
    python -m repro.lint src/ --format=json     # machine-readable

Findings are suppressed per line with a justified pragma::

    det = dx0 * dy1 - dy0 * dx1  # lint: disable=R1 -- magnitude only

A pragma without a one-line justification is itself a finding (``P0``),
and a pragma that suppresses nothing is a finding (``P1``) — so the
pragma inventory can never silently outgrow the code it excuses.

The rule set (see :mod:`repro.lint.rules` for the full statements):

========  ==============================================================
``R1``    raw float determinant sign tests outside ``geometry/predicates``
``R2``    ``==``/``!=`` against float literals in geometry/delaunay/core
``R3``    stdlib ``random`` / unseeded ``np.random.*`` in algorithm code
``R4``    iteration over ``set``/``frozenset`` in ``core``/``runtime``
``R5``    wall-clock reads outside ``runtime.counters``
``R6``    ``Window._data`` / comm exchange-box access outside the lock
========  ==============================================================

The static lockset rule ``R6`` is paired with a *runtime* sanitizer,
:mod:`repro.lint.tsan` — a vector-clock + lockset race detector that
instruments :class:`repro.runtime.rma.Window` and
:class:`repro.runtime.comm.ThreadComm` when ``REPRO_SANITIZE=1``.
"""

from .engine import Finding, LintRunner, RULESET_VERSION, run_lint
from .rules import ALL_RULES, rule_ids

__all__ = [
    "ALL_RULES",
    "Finding",
    "LintRunner",
    "RULESET_VERSION",
    "rule_ids",
    "run_lint",
]
