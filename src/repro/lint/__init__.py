"""repro.lint — invariant-enforcing static analysis for the mesher.

The paper's correctness story rests on invariants the code can silently
break: exact-arithmetic escalation for geometric predicates (Section
II.B), deterministic subdomain interfaces after decoupling (Section
II.E), and data-race-free RMA-window work stealing (Section II.F).  The
dynamic invariant tests (``tests/delaunay/test_invariants.py``) check
*outputs*; this package checks *sources*: statement-level AST rules
(R1–R7) plus a function-scope **CFG + dataflow engine**
(:mod:`repro.lint.cfg`, :mod:`repro.lint.dataflow`) for path-sensitive
properties — resource lifetimes across exception edges, epoch-fence
dominance — that no single statement can witness (R8–R12).

Usage::

    python -m repro.lint src/ tests/             # human-readable
    python -m repro.lint src/ --format=json      # machine-readable
    python -m repro.lint src/ --format=sarif     # code-scanning upload
    python -m repro.lint src/ --baseline lint-baseline.json

Exit codes: 0 clean (or all findings baselined/warn), 1 error-severity
findings, 2 usage error / unreadable input / internal lint crash.

Findings are suppressed per line with a justified pragma::

    det = dx0 * dy1 - dy0 * dx1  # lint: disable=R1 -- magnitude only

A pragma without a one-line justification is itself a finding (``P0``),
and a pragma that suppresses nothing is a finding (``P1``) — so the
pragma inventory can never silently outgrow the code it excuses.
Per-tree severity overrides
(:data:`repro.lint.engine.DEFAULT_SEVERITY_MAP`) relax production-only
rules for ``tests/`` and ``examples/``.

The rule set (see :mod:`repro.lint.rules` and the ``rules_*`` modules
for the full statements):

========  ==============================================================
``R1``    raw float determinant sign tests outside ``geometry/predicates``
``R2``    ``==``/``!=`` against float literals in geometry/delaunay/core
``R3``    stdlib ``random`` / unseeded ``np.random.*`` in algorithm code
``R4``    iteration over ``set``/``frozenset`` in ``core``/``runtime``
``R5``    wall-clock reads outside ``runtime.counters``
``R6``    ``Window._data`` / comm exchange-box access outside the lock
``R7``    per-element Python loops over mesh buffers in finalize/serde
``R8``    shm/wire value leaked on some path (incl. exception edges)
``R9``    blocking calls inside ``async def`` bodies
``R10``   serde buffer-contract violations (dtype / key naming)
``R11``   un-fenced pool-result reads; warm→bind / abort→shutdown order
``R12``   unpaired counter samples (``shm_nbytes`` without ``shm_seconds``)
========  ==============================================================

The static lockset rule ``R6`` is paired with a *runtime* sanitizer,
:mod:`repro.lint.tsan` — a vector-clock + lockset race detector that
instruments :class:`repro.runtime.rma.Window` and
:class:`repro.runtime.comm.ThreadComm` when ``REPRO_SANITIZE=1``.
"""

from .engine import (Finding, LintRunner, RULESET_VERSION, run_lint,
                     DEFAULT_SEVERITY_MAP, load_baseline, write_baseline,
                     apply_baseline)
from .rules import ALL_RULES, rule_ids

__all__ = [
    "ALL_RULES",
    "Finding",
    "LintRunner",
    "RULESET_VERSION",
    "DEFAULT_SEVERITY_MAP",
    "rule_ids",
    "run_lint",
    "load_baseline",
    "write_baseline",
    "apply_baseline",
]
