"""R10 — serde buffer-contract checking.

Everything the transport layer ships is a flat dict of NumPy arrays
with a fixed dtype contract: geometry is ``float64``, connectivity is
``int32`` (``int64`` for offsets/indices that can overflow), flags are
``uint8``/``bool``.  The canonical-bytes hash, the shm segment layout
and the wire envelope framing all assume it; a ``float32`` buffer
round-trips to different canonical bytes on the receiving rank and the
determinism story of the paper (byte-identical meshes for identical
seeds) quietly dies.
"""

from __future__ import annotations

import ast
import re
from typing import List, Optional

from .engine import FileContext, Finding
from .rules import Rule, _dotted, _scopes

__all__ = ["SerdeContractRule"]

#: dtypes the transport contract forbids (narrowed/widened variants).
_BAD_DTYPES = {"float32", "float16", "int8", "int16", "uint16", "uint32",
               "uint64", "complex64", "complex128", "longdouble",
               "single", "half"}

_KEY_RE = re.compile(r"^[a-z][a-z0-9_]*$")

#: numpy constructors whose dtype= keyword we inspect.
_NP_CTORS = {"zeros", "empty", "ones", "full", "asarray", "array",
             "arange", "frombuffer", "fromiter", "asanyarray",
             "ascontiguousarray"}


def _dtype_token(expr: ast.expr) -> Optional[str]:
    """Render a dtype expression to its terminal token, if recognisable."""
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        return expr.value
    if isinstance(expr, ast.Attribute):
        return expr.attr
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Call):
        # np.dtype("float32") and friends.
        if expr.args:
            return _dtype_token(expr.args[0])
    return None


class SerdeContractRule(Rule):
    """R10: buffer factories keep the float64/int32 dtype + key contract.

    Invariant: every buffer dict handed to the serde layer uses the
    dtypes and key names ``canonical_bytes``/``buffers_to_shm`` round-
    trip exactly.

    Heuristic — inside functions named ``pack_*``/``unpack_*``/
    ``buffers_*``/``*_buffers`` (the factories that feed serde):

    * a NumPy constructor (``np.zeros``/``asarray``/...) whose
      ``dtype=`` argument, or an ``.astype(...)`` call whose argument,
      is a forbidden narrow/widened dtype (``float32``, ``int16``,
      ``uint32``, ...);
    * a dict-literal key that is not a lowercase ``snake_case`` string —
      non-string keys don't serialise, and mixed-case keys break the
      sorted-key canonical ordering across platforms.

    Fix: use ``float64``/``int32``/``int64``/``uint8``/``bool`` and
    plain snake_case keys; convert exotic dtypes at the boundary, not
    inside the transport dict.
    """

    id = "R10"
    title = "serde buffer contract violation (dtype or key naming)"
    invariant = "float64/int32 dtype + snake_case key transport contract"

    _FUNC_PREFIXES = ("pack_", "unpack_", "buffers_")
    _FUNC_SUFFIX = "_buffers"

    def applies(self, ctx: FileContext) -> bool:  # pragma: no cover - trivial
        return True

    def _in_scope(self, name: str) -> bool:
        return (name.startswith(self._FUNC_PREFIXES)
                or name.endswith(self._FUNC_SUFFIX))

    # ------------------------------------------------------------------
    def _check_call(self, ctx: FileContext, call: ast.Call,
                    fname: str, findings: List[Finding]) -> None:
        fn = call.func
        if isinstance(fn, ast.Attribute) and fn.attr == "astype":
            arg = call.args[0] if call.args else None
            for kw in call.keywords:
                if kw.arg == "dtype":
                    arg = kw.value
            token = _dtype_token(arg) if arg is not None else None
            if token in _BAD_DTYPES:
                findings.append(self.finding(
                    ctx, call,
                    f".astype({token}) in '{fname}' breaks the serde "
                    "dtype contract — buffers ship as "
                    "float64/int32/int64/uint8/bool only"))
            return
        last = _dotted(fn).rsplit(".", 1)[-1]
        if last not in _NP_CTORS:
            return
        for kw in call.keywords:
            if kw.arg != "dtype":
                continue
            token = _dtype_token(kw.value)
            if token in _BAD_DTYPES:
                findings.append(self.finding(
                    ctx, kw.value,
                    f"dtype={token} in '{fname}' breaks the serde "
                    "contract — transport buffers are "
                    "float64/int32/int64/uint8/bool; convert at the "
                    "boundary, not in the buffer dict"))

    def _check_dict(self, ctx: FileContext, node: ast.Dict,
                    fname: str, findings: List[Finding]) -> None:
        for key in node.keys:
            if key is None:  # **spread — keys checked at their source
                continue
            if not (isinstance(key, ast.Constant)
                    and isinstance(key.value, str)):
                findings.append(self.finding(
                    ctx, key,
                    f"non-literal-string buffer key in '{fname}' — serde "
                    "canonical ordering needs constant snake_case keys"))
                continue
            if not _KEY_RE.match(key.value):
                findings.append(self.finding(
                    ctx, key,
                    f"buffer key '{key.value}' in '{fname}' is not "
                    "snake_case — canonical sorted-key hashing requires "
                    "lowercase [a-z][a-z0-9_]* names"))

    def check(self, ctx: FileContext) -> List[Finding]:
        findings: List[Finding] = []
        for scope in _scopes(ctx):
            if not (isinstance(scope, (ast.FunctionDef,
                                       ast.AsyncFunctionDef))
                    and self._in_scope(scope.name)):
                continue
            stack: List[ast.AST] = list(scope.body)
            while stack:
                node = stack.pop()
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.ClassDef)):
                    continue
                if isinstance(node, ast.Call):
                    self._check_call(ctx, node, scope.name, findings)
                elif isinstance(node, ast.Dict):
                    self._check_dict(ctx, node, scope.name, findings)
                stack.extend(ast.iter_child_nodes(node))
        return findings
