"""Lightweight vector-clock + lockset race detector (``REPRO_SANITIZE=1``).

The static lockset rule (R6) proves that *named* guarded state is only
touched under its owning lock; this module is the dynamic complement for
everything the AST cannot see: it instruments
:class:`repro.runtime.rma.Window` and
:class:`repro.runtime.comm.ThreadComm` and checks, per actual execution,
that every pair of conflicting accesses to shared state is ordered by a
happens-before edge or covered by a common lock.

Model (a simplified FastTrack / Eraser hybrid):

* each thread carries a **vector clock** ``{tid: epoch}``;
* **lock release** publishes the holder's clock into the lock, **lock
  acquire** joins it — so lock-ordered critical sections are ordered;
* **send** snapshots the sender's clock onto the message, **recv** joins
  it — so the work-stealing transfer of a ``WorkItem`` is ordered;
* **barrier** joins every participant's clock — so the collective
  exchange boxes of :class:`ThreadComm` are ordered without locks;
* each instrumented **location** remembers its last write and the reads
  since; a new access *races* with a remembered one when it comes from a
  different thread, is not happens-after it, and the two locksets are
  disjoint.

A detected race raises :class:`RaceError` naming **both** access sites
(file:line of the code that performed each access).  The detector is a
single global guarded by one lock — it serializes instrumented
operations, which is exactly the wrong thing for throughput and exactly
the right thing for a sanitizer that runs in CI.

Enable with the environment variable ``REPRO_SANITIZE=1`` (checked at
import), programmatically with :func:`enable`/:func:`disable`, or
scoped with the :func:`sanitize` context manager.

Scope: the detector instruments **shared memory**, so it covers the
``serial`` and ``threads`` executor backends only.  The ``processes``
backend shares no state the detector can see — worker processes have
their own address spaces and coordinate through an OS-level
``multiprocessing`` lock/array the instrumentation does not reach — so
running it under the sanitizer would produce a clean-but-vacuous
report.  :class:`repro.runtime.executor.ProcessesBackend` therefore
*fails fast* with an :class:`~repro.runtime.executor.ExecutorError`
when the detector is enabled, and ``repro-mesh --sanitize --backend
processes`` is rejected at argument parsing.
"""

from __future__ import annotations

import os
import sys
import threading
from contextlib import contextmanager
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

__all__ = [
    "RaceError",
    "Detector",
    "Access",
    "enable",
    "disable",
    "enabled",
    "get",
    "sanitize",
    "suspend",
    "status",
    "note_acquire",
    "note_release",
    "note_access",
    "note_send",
    "note_recv",
    "note_barrier_begin",
    "note_barrier_end",
]

VectorClock = Dict[int, int]


def vc_join(a: VectorClock, b: VectorClock) -> VectorClock:
    """Pointwise max of two vector clocks."""
    out = dict(a)
    for tid, n in b.items():
        if out.get(tid, 0) < n:
            out[tid] = n
    return out


def vc_leq(a: VectorClock, b: VectorClock) -> bool:
    """``a`` happens-before-or-equals ``b`` (pointwise <=)."""
    return all(b.get(tid, 0) >= n for tid, n in a.items())


class RaceError(RuntimeError):
    """Unsynchronized conflicting accesses to instrumented shared state."""

    def __init__(self, message: str, current: "Access",
                 previous: "Access") -> None:
        super().__init__(message)
        self.current = current
        self.previous = previous


class Access:
    """One remembered access to a location."""

    __slots__ = ("tid", "clock", "lockset", "site", "is_write")

    def __init__(self, tid: int, clock: VectorClock,
                 lockset: FrozenSet, site: str, is_write: bool) -> None:
        self.tid = tid
        self.clock = clock
        self.lockset = lockset
        self.site = site
        self.is_write = is_write

    @property
    def kind(self) -> str:
        return "write" if self.is_write else "read"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{self.kind} by t{self.tid} at {self.site}>"


# Frames from these files are skipped when attributing an access site, so
# races are reported against the *algorithm* code that invoked the
# runtime op, not the instrumentation plumbing.
_INTERNAL_FILES = ("lint/tsan.py", "runtime/rma.py", "runtime/comm.py")


def _call_site() -> str:
    frame = sys._getframe(1)
    fallback = None
    while frame is not None:
        fn = frame.f_code.co_filename.replace(os.sep, "/")
        if fallback is None and not fn.endswith("lint/tsan.py"):
            fallback = frame
        if not fn.endswith(_INTERNAL_FILES):
            return (f"{frame.f_code.co_filename}:{frame.f_lineno} "
                    f"in {frame.f_code.co_name}")
        frame = frame.f_back
    frame = fallback or sys._getframe(1)
    return (f"{frame.f_code.co_filename}:{frame.f_lineno} "
            f"in {frame.f_code.co_name}")


class Detector:
    """Global happens-before + lockset state for one sanitized run."""

    #: reads remembered per location (per thread, last one wins; bounded
    #: so a hot polling loop cannot grow the history without limit).
    MAX_READS = 64

    def __init__(self) -> None:
        self._mu = threading.Lock()
        self._clocks: Dict[int, VectorClock] = {}
        self._held: Dict[int, List[object]] = {}
        self._lock_clocks: Dict[object, VectorClock] = {}
        self._barrier_clocks: Dict[object, VectorClock] = {}
        self._locations: Dict[object, Tuple[Optional[Access],
                                            Dict[int, Access]]] = {}
        self.n_accesses = 0
        self.n_edges = 0
        self.races: List[RaceError] = []

    # -- per-thread state ----------------------------------------------
    def _tid(self) -> int:
        return threading.get_ident()

    def _clock(self, tid: int) -> VectorClock:
        c = self._clocks.get(tid)
        if c is None:
            c = {tid: 1}
            self._clocks[tid] = c
        return c

    def _tick(self, tid: int) -> None:
        c = self._clock(tid)
        c[tid] = c.get(tid, 0) + 1

    def _lockset(self, tid: int) -> FrozenSet:
        return frozenset(id(k) for k in self._held.get(tid, ()))

    # -- happens-before edges ------------------------------------------
    def acquire(self, lock: object) -> None:
        """The calling thread acquired ``lock`` (already holds it)."""
        with self._mu:
            tid = self._tid()
            self._held.setdefault(tid, []).append(lock)
            published = self._lock_clocks.get(lock)
            if published is not None:
                self._clocks[tid] = vc_join(self._clock(tid), published)
                self.n_edges += 1

    def release(self, lock: object) -> None:
        """The calling thread is about to release ``lock``."""
        with self._mu:
            tid = self._tid()
            self._lock_clocks[lock] = dict(self._clock(tid))
            self._tick(tid)
            held = self._held.get(tid, [])
            if lock in held:
                held.remove(lock)

    def send(self) -> VectorClock:
        """Snapshot the sender's clock for attachment to a message."""
        with self._mu:
            tid = self._tid()
            snap = dict(self._clock(tid))
            self._tick(tid)
            self.n_edges += 1
            return snap

    def recv(self, snapshot: Optional[VectorClock]) -> None:
        """Join a received message's clock into the receiver."""
        if snapshot is None:
            return
        with self._mu:
            tid = self._tid()
            self._clocks[tid] = vc_join(self._clock(tid), snapshot)
            self.n_edges += 1

    def barrier_begin(self, key: object) -> None:
        """Before blocking on a barrier: publish this thread's clock.

        All ``barrier_begin`` calls of one round precede every
        ``barrier_end`` (the real barrier blocks between them), so the
        accumulated clock each thread joins on exit dominates every
        participant's entry clock.  The accumulator is monotone across
        rounds, which only *adds* true edges (round ``n`` completion
        implies round ``n-1`` completed).
        """
        with self._mu:
            tid = self._tid()
            acc = self._barrier_clocks.setdefault(key, {})
            self._barrier_clocks[key] = vc_join(acc, self._clock(tid))
            self._tick(tid)

    def barrier_end(self, key: object) -> None:
        """After the barrier released: join the accumulated clock."""
        with self._mu:
            tid = self._tid()
            acc = self._barrier_clocks.get(key)
            if acc is not None:
                self._clocks[tid] = vc_join(self._clock(tid), acc)
                self.n_edges += 1

    # -- the check ------------------------------------------------------
    def access(self, location: object, is_write: bool,
               site: Optional[str] = None) -> None:
        """Record an access to ``location``; raise on a detected race."""
        if site is None:
            site = _call_site()
        with self._mu:
            tid = self._tid()
            me = Access(tid, dict(self._clock(tid)), self._lockset(tid),
                        site, is_write)
            self.n_accesses += 1
            last_write, reads = self._locations.get(location, (None, {}))

            def conflicts(other: Access) -> bool:
                return (other.tid != tid
                        and not vc_leq(other.clock, me.clock)
                        and not (other.lockset & me.lockset))

            racy: Optional[Access] = None
            if last_write is not None and conflicts(last_write):
                racy = last_write
            if racy is None and is_write:
                for r in reads.values():
                    if conflicts(r):
                        racy = r
                        break
            if racy is not None:
                err = RaceError(
                    f"data race on {location!r}: "
                    f"{me.kind} by thread {tid} at {me.site} is unordered "
                    f"with {racy.kind} by thread {racy.tid} at {racy.site} "
                    f"(no happens-before edge, disjoint locksets)",
                    me, racy)
                self.races.append(err)
                raise err

            if is_write:
                self._locations[location] = (me, {})
            else:
                if len(reads) >= self.MAX_READS:
                    reads.pop(next(iter(reads)))
                reads[tid] = me
                self._locations[location] = (last_write, reads)

    # -- reporting ------------------------------------------------------
    def status(self) -> Dict[str, object]:
        with self._mu:
            return {
                "enabled": True,
                "threads_seen": len(self._clocks),
                "locations_tracked": len(self._locations),
                "accesses_checked": self.n_accesses,
                "hb_edges": self.n_edges,
                "races_detected": len(self.races),
            }


# ----------------------------------------------------------------------
# Global switch
# ----------------------------------------------------------------------
_detector: Optional[Detector] = None


def enable() -> Detector:
    """Install a fresh detector; subsequent runtime ops are instrumented."""
    global _detector
    _detector = Detector()
    return _detector


def disable() -> None:
    global _detector
    _detector = None


def enabled() -> bool:
    return _detector is not None


def get() -> Optional[Detector]:
    """The active detector, or ``None`` — the runtime's fast-path check."""
    return _detector


@contextmanager
def sanitize() -> Iterator[Detector]:
    """Run a block under a fresh detector, restoring the previous state."""
    global _detector
    prev = _detector
    det = Detector()
    _detector = det
    try:
        yield det
    finally:
        _detector = prev


@contextmanager
def suspend() -> Iterator[None]:
    """Run a block with the detector off, restoring it on exit.

    For code that legitimately cannot run instrumented — e.g. driving
    the ``processes`` executor backend (which fails fast under the
    sanitizer by design) from a test session that is otherwise running
    under ``REPRO_SANITIZE=1``.
    """
    global _detector
    prev = _detector
    _detector = None
    try:
        yield
    finally:
        _detector = prev


def status() -> Dict[str, object]:
    """Sanitizer status for ``--stats-json`` (works enabled or not)."""
    det = _detector
    if det is None:
        return {"enabled": False}
    return det.status()


# ----------------------------------------------------------------------
# One-line instrumentation hooks for the runtime (no-ops when disabled).
# ----------------------------------------------------------------------
def note_acquire(lock: object) -> None:
    det = _detector
    if det is not None:
        det.acquire(lock)


def note_release(lock: object) -> None:
    det = _detector
    if det is not None:
        det.release(lock)


def note_access(location: object, is_write: bool) -> None:
    det = _detector
    if det is not None:
        det.access(location, is_write)


def note_send() -> Optional[VectorClock]:
    """Clock snapshot to attach to an outgoing message (None if off)."""
    det = _detector
    if det is not None:
        return det.send()
    return None


def note_recv(snapshot: Optional[VectorClock]) -> None:
    det = _detector
    if det is not None:
        det.recv(snapshot)


def note_barrier_begin(key: object) -> None:
    det = _detector
    if det is not None:
        det.barrier_begin(key)


def note_barrier_end(key: object) -> None:
    det = _detector
    if det is not None:
        det.barrier_end(key)


if os.environ.get("REPRO_SANITIZE", "") == "1":
    enable()
