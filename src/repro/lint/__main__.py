"""CLI: ``python -m repro.lint src/ tests/ [--format=sarif]``.

Exit codes: 0 = clean (or all findings baselined / warn-severity),
1 = error-severity findings, 2 = usage error, internal lint crash, or
unreadable/unparseable input (E9) — CI treats 1 as "fix your change"
and 2 as "fix the linter".
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .engine import (LintRunner, apply_baseline, format_json, load_baseline,
                     write_baseline)
from .rules import ALL_RULES, rule_ids


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Invariant-enforcing static analysis for the mesher "
        "(see repro/lint/rules.py for the rule statements).",
    )
    p.add_argument("paths", nargs="*", default=["src"],
                   help="files or directories to lint (default: src)")
    p.add_argument("--format", choices=["text", "json", "sarif"],
                   default="text")
    p.add_argument("--select", metavar="RULES",
                   help="comma-separated rule ids to run (default: all)")
    p.add_argument("--baseline", metavar="FILE",
                   help="suppress findings recorded in this baseline file "
                   "(exit 0 unless new error-severity findings appear)")
    p.add_argument("--write-baseline", metavar="FILE",
                   help="record current error-severity findings as the "
                   "baseline and exit 0")
    p.add_argument("--list-rules", action="store_true",
                   help="print the rule set and exit")
    return p


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    rules = list(ALL_RULES)
    if args.select:
        wanted = {r.strip().upper() for r in args.select.split(",")}
        unknown = wanted - {r.id for r in ALL_RULES}
        if unknown:
            print(f"unknown rule id(s): {', '.join(sorted(unknown))}",
                  file=sys.stderr)
            return 2
        rules = [r for r in ALL_RULES if r.id in wanted]

    if args.list_rules:
        for r in rules:
            print(f"{r.id}  {r.title}")
            print(f"     invariant: {r.invariant}")
        return 0

    if not args.paths:
        print("no paths given", file=sys.stderr)
        return 2

    # The pragma catalog stays the full rule set even under --select, so
    # excuses for unselected rules aren't misread as unknown ids.
    runner = LintRunner(rules, catalog=rule_ids())
    findings, n_files = runner.run(args.paths)

    if args.write_baseline:
        write_baseline(Path(args.write_baseline), findings)
        print(f"baseline written: {args.write_baseline} "
              f"({len(findings)} finding(s))")
        return 0

    suppressed = 0
    if args.baseline:
        findings, suppressed = apply_baseline(
            findings, load_baseline(Path(args.baseline)))

    if args.format == "json":
        print(format_json(findings, n_files, rules))
    elif args.format == "sarif":
        from .sarif import format_sarif
        print(format_sarif(findings, rules))
    else:
        for f in findings:
            print(f.format_text())
        tail = f"{len(findings)} finding(s) in {n_files} file(s)"
        if suppressed:
            tail += f" ({suppressed} baselined)"
        print(tail if findings else
              f"clean: 0 findings in {n_files} file(s)"
              + (f" ({suppressed} baselined)" if suppressed else ""))

    if any(f.rule == "E9" for f in findings):
        return 2
    return 1 if any(f.severity == "error" for f in findings) else 0


if __name__ == "__main__":
    sys.exit(main())
