"""CLI: ``python -m repro.lint src/ tests/ [--format=json]``.

Exit codes: 0 = clean, 1 = findings, 2 = usage error.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .engine import LintRunner, format_json
from .rules import ALL_RULES


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Invariant-enforcing static analysis for the mesher "
        "(see repro/lint/rules.py for the rule statements).",
    )
    p.add_argument("paths", nargs="*", default=["src"],
                   help="files or directories to lint (default: src)")
    p.add_argument("--format", choices=["text", "json"], default="text")
    p.add_argument("--select", metavar="RULES",
                   help="comma-separated rule ids to run (default: all)")
    p.add_argument("--list-rules", action="store_true",
                   help="print the rule set and exit")
    return p


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    rules = list(ALL_RULES)
    if args.select:
        wanted = {r.strip().upper() for r in args.select.split(",")}
        unknown = wanted - {r.id for r in ALL_RULES}
        if unknown:
            print(f"unknown rule id(s): {', '.join(sorted(unknown))}",
                  file=sys.stderr)
            return 2
        rules = [r for r in ALL_RULES if r.id in wanted]

    if args.list_rules:
        for r in rules:
            print(f"{r.id}  {r.title}")
            print(f"     invariant: {r.invariant}")
        return 0

    if not args.paths:
        print("no paths given", file=sys.stderr)
        return 2

    runner = LintRunner(rules)
    findings, n_files = runner.run(args.paths)

    if args.format == "json":
        print(format_json(findings, n_files, rules))
    else:
        for f in findings:
            print(f.format_text())
        tail = f"{len(findings)} finding(s) in {n_files} file(s)"
        print(tail if findings else f"clean: 0 findings in {n_files} file(s)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
