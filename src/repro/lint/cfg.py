"""Function-scope control-flow graphs for the dataflow lint rules.

The statement-level AST checks of :mod:`repro.lint.rules` cannot see
*paths*: whether a shared-memory wire acquired on line 10 is discarded
on **every** route to the function's exits, including the route where
line 12 raises.  This module builds the graph those questions need —
one CFG per function, with explicit exception and ``finally`` edges —
and :mod:`repro.lint.dataflow` runs gen/kill fixed points over it.

Model (deliberately pragmatic, documented so rule authors know the
approximations they inherit):

* Every statement is its own node; three synthetic nodes mark the
  function boundary: ``ENTRY``, ``EXIT`` (normal return / fall-off) and
  ``RAISE`` (an exception escaping the function).
* Edges carry a kind: ``flow`` (the statement completed) or ``exc``
  (the statement raised).  Dataflow propagates *post-kill, pre-gen*
  state along ``exc`` edges: a statement that raises has not produced
  its value, but a statement that releases a resource is treated as
  atomic (its own failure is not counted as a leak of that resource).
* A statement *can raise* when its governing expressions contain a
  call or an explicit ``raise``.  Pure data movement (``x = y``,
  constants, tuple packing) and ``assert`` are treated as non-raising:
  an assert failure is a deliberate abort, and counting every
  subscript would drown the signal in noise.
* ``except``/``finally``: an exception inside a ``try`` body lands on
  every handler entry (we do not match exception types); when no
  handler is a catch-all (bare ``except``, ``except BaseException`` /
  ``Exception``) it *also* escapes outward.  ``finally`` bodies are
  built once and every leaving route — normal completion, uncaught
  exception, ``return``/``break``/``continue`` observed in the guarded
  suite — funnels through them and fans out to the corresponding
  continuations.  The fan-out merges paths (a may-analysis
  over-approximation), which can only add spurious leak paths, never
  hide real ones.
* ``with`` bodies are inlined; ``__exit__`` is assumed not to raise.

Dominators (for the epoch-fence rule) come from the standard iterative
set intersection over the same graph.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = ["CFG", "CFGNode", "build_cfg", "FLOW", "EXC"]

FLOW = "flow"
EXC = "exc"

#: handler annotations that catch everything for routing purposes.
_CATCH_ALL = {"BaseException", "Exception"}


class CFGNode:
    """One CFG node: a statement, or a synthetic boundary marker."""

    __slots__ = ("idx", "stmt", "kind", "succ", "pred")

    def __init__(self, idx: int, stmt: Optional[ast.stmt],
                 kind: str) -> None:
        self.idx = idx
        self.stmt = stmt
        #: "stmt" | "entry" | "exit" | "raise"
        self.kind = kind
        #: outgoing edges as ``(node_idx, edge_kind)``.
        self.succ: List[Tuple[int, str]] = []
        #: incoming edges as ``(node_idx, edge_kind)``.
        self.pred: List[Tuple[int, str]] = []

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        label = (f"L{getattr(self.stmt, 'lineno', '?')}"
                 if self.stmt is not None else self.kind.upper())
        return f"<CFGNode {self.idx} {label}>"


class CFG:
    """The control-flow graph of one function scope."""

    def __init__(self) -> None:
        self.nodes: List[CFGNode] = []
        self.entry = self._new(None, "entry").idx
        self.exit = self._new(None, "exit").idx
        self.raise_exit = self._new(None, "raise").idx

    # -- construction helpers ------------------------------------------
    def _new(self, stmt: Optional[ast.stmt], kind: str = "stmt") -> CFGNode:
        node = CFGNode(len(self.nodes), stmt, kind)
        self.nodes.append(node)
        return node

    def _edge(self, src: int, dst: int, kind: str = FLOW) -> None:
        if (dst, kind) not in self.nodes[src].succ:
            self.nodes[src].succ.append((dst, kind))
            self.nodes[dst].pred.append((src, kind))

    # -- queries --------------------------------------------------------
    def stmt_nodes(self) -> Iterable[CFGNode]:
        return (n for n in self.nodes if n.kind == "stmt")

    def dominators(self) -> List[Set[int]]:
        """``dom[i]`` = node ids dominating node ``i`` (incl. itself).

        Unreachable nodes dominate nothing and report an empty set.
        """
        n = len(self.nodes)
        reachable = self._reachable()
        full = set(range(n))
        dom: List[Set[int]] = [full.copy() for _ in range(n)]
        dom[self.entry] = {self.entry}
        changed = True
        while changed:
            changed = False
            for node in self.nodes:
                i = node.idx
                if i == self.entry or i not in reachable:
                    continue
                preds = [p for p, _k in node.pred if p in reachable]
                if not preds:
                    continue
                new = set.intersection(*(dom[p] for p in preds)) | {i}
                if new != dom[i]:
                    dom[i] = new
                    changed = True
        for i in range(n):
            if i not in reachable:
                dom[i] = set()
        return dom

    def _reachable(self) -> Set[int]:
        seen = {self.entry}
        stack = [self.entry]
        while stack:
            for s, _k in self.nodes[stack.pop()].succ:
                if s not in seen:
                    seen.add(s)
                    stack.append(s)
        return seen


# ----------------------------------------------------------------------
# Builder
# ----------------------------------------------------------------------
def _expr_can_raise(*exprs: Optional[ast.AST]) -> bool:
    for e in exprs:
        if e is None:
            continue
        for node in ast.walk(e):
            if isinstance(node, (ast.Call, ast.Raise, ast.Await)):
                return True
    return False


def _stmt_can_raise(stmt: ast.stmt) -> bool:
    """Can executing this statement's *own* part raise?

    Compound statements only evaluate their header expression at the
    node itself (the body gets its own nodes); simple statements are
    scanned whole.  ``assert`` is deliberately excluded (see module
    docstring).
    """
    if isinstance(stmt, (ast.If, ast.While)):
        return _expr_can_raise(stmt.test)
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return _expr_can_raise(stmt.iter)
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return _expr_can_raise(*(i.context_expr for i in stmt.items))
    if isinstance(stmt, (ast.Try, ast.Assert)):
        return False
    if isinstance(stmt, ast.Raise):
        return True
    return _expr_can_raise(stmt)


def _suite_mentions(stmts: Sequence[ast.stmt], kinds: tuple) -> bool:
    """Does the suite contain one of the statement kinds (not nested in
    an inner function/class, which has its own CFG)?"""
    stack = list(stmts)
    while stack:
        node = stack.pop()
        if isinstance(node, kinds):
            return True
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))  # type: ignore[arg-type]
    return False


class _Loop:
    __slots__ = ("head", "breaks")

    def __init__(self, head: int) -> None:
        self.head = head
        #: node ids whose flow edge must go to the loop's continuation.
        self.breaks: List[int] = []


class _Builder:
    def __init__(self, cfg: CFG) -> None:
        self.cfg = cfg
        self.loops: List[_Loop] = []
        #: where an uncaught exception lands (innermost first):
        #: handler entries / finally entry of enclosing tries, ending
        #: with the RAISE node.
        self.escape: List[int] = [cfg.raise_exit]
        #: where ``return`` routes (finally entry, or EXIT).
        self.ret_target: int = cfg.exit

    # ------------------------------------------------------------------
    def seq(self, stmts: Sequence[ast.stmt]) -> Tuple[Optional[int],
                                                      List[int]]:
        """Build a statement suite; returns ``(entry, open_exits)``."""
        entry: Optional[int] = None
        open_exits: List[int] = []
        first = True
        for stmt in stmts:
            s_entry, s_exits = self.stmt(stmt)
            if s_entry is None:
                continue
            if first:
                entry = s_entry
                first = False
            else:
                for e in open_exits:
                    self.cfg._edge(e, s_entry, FLOW)
            open_exits = s_exits
        return entry, open_exits

    def _exc_edges(self, idx: int) -> None:
        for target in self.escape:
            self.cfg._edge(idx, target, EXC)

    # ------------------------------------------------------------------
    def stmt(self, stmt: ast.stmt) -> Tuple[Optional[int], List[int]]:
        cfg = self.cfg
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            # Nested definitions are separate scopes: the def/class
            # statement itself is a plain binding here.
            node = cfg._new(stmt)
            return node.idx, [node.idx]
        if isinstance(stmt, ast.Return):
            node = cfg._new(stmt)
            if _stmt_can_raise(stmt):
                self._exc_edges(node.idx)
            cfg._edge(node.idx, self.ret_target, FLOW)
            return node.idx, []
        if isinstance(stmt, ast.Raise):
            node = cfg._new(stmt)
            self._exc_edges(node.idx)
            return node.idx, []
        if isinstance(stmt, ast.Break):
            node = cfg._new(stmt)
            if self.loops:
                self.loops[-1].breaks.append(node.idx)
            return node.idx, []
        if isinstance(stmt, ast.Continue):
            node = cfg._new(stmt)
            if self.loops:
                cfg._edge(node.idx, self.loops[-1].head, FLOW)
            return node.idx, []
        if isinstance(stmt, ast.If):
            node = cfg._new(stmt)
            if _stmt_can_raise(stmt):
                self._exc_edges(node.idx)
            b_entry, b_exits = self.seq(stmt.body)
            exits = list(b_exits)
            if b_entry is not None:
                cfg._edge(node.idx, b_entry, FLOW)
            if stmt.orelse:
                o_entry, o_exits = self.seq(stmt.orelse)
                if o_entry is not None:
                    cfg._edge(node.idx, o_entry, FLOW)
                exits.extend(o_exits)
            else:
                exits.append(node.idx)
            return node.idx, exits
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            node = cfg._new(stmt)
            if _stmt_can_raise(stmt):
                self._exc_edges(node.idx)
            loop = _Loop(node.idx)
            self.loops.append(loop)
            b_entry, b_exits = self.seq(stmt.body)
            self.loops.pop()
            if b_entry is not None:
                cfg._edge(node.idx, b_entry, FLOW)
            for e in b_exits:
                cfg._edge(e, node.idx, FLOW)  # back edge
            exits: List[int] = list(loop.breaks)
            is_forever = (isinstance(stmt, ast.While)
                          and isinstance(stmt.test, ast.Constant)
                          and bool(stmt.test.value))
            if stmt.orelse:
                o_entry, o_exits = self.seq(stmt.orelse)
                if o_entry is not None:
                    cfg._edge(node.idx, o_entry, FLOW)
                exits.extend(o_exits)
            elif not is_forever:
                exits.append(node.idx)
            return node.idx, exits
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            node = cfg._new(stmt)
            if _stmt_can_raise(stmt):
                self._exc_edges(node.idx)
            b_entry, b_exits = self.seq(stmt.body)
            if b_entry is not None:
                cfg._edge(node.idx, b_entry, FLOW)
                return node.idx, b_exits
            return node.idx, [node.idx]
        if isinstance(stmt, ast.Try):
            return self._try(stmt)
        # Simple statement.
        node = cfg._new(stmt)
        if _stmt_can_raise(stmt):
            self._exc_edges(node.idx)
        return node.idx, [node.idx]

    # ------------------------------------------------------------------
    def _try(self, stmt: ast.Try) -> Tuple[Optional[int], List[int]]:
        cfg = self.cfg
        outer_escape = self.escape
        outer_ret = self.ret_target
        outer_loops = self.loops

        # Build the finally suite first under the *outer* routing so we
        # can use its entry as the conduit for every leaving edge.
        f_entry: Optional[int] = None
        f_exits: List[int] = []
        if stmt.finalbody:
            f_entry, f_exits = self.seq(stmt.finalbody)

        # Handler entry placeholders: the handler's first statement.
        # Build handlers under outer routing (exceptions inside a
        # handler propagate outward), or through finally if present.
        if f_entry is not None:
            inner_escape_tail = [f_entry]
            inner_ret = f_entry
        else:
            inner_escape_tail = outer_escape
            inner_ret = outer_ret

        handler_entries: List[int] = []
        handler_exits: List[int] = []
        catch_all = False
        for handler in stmt.handlers:
            if handler.type is None:
                catch_all = True
            elif (isinstance(handler.type, ast.Name)
                    and handler.type.id in _CATCH_ALL):
                catch_all = True
            elif (isinstance(handler.type, ast.Attribute)
                    and handler.type.attr in _CATCH_ALL):
                catch_all = True
            self.escape = inner_escape_tail
            self.ret_target = inner_ret
            h_entry, h_exits = self.seq(handler.body)
            if h_entry is None:  # empty handler body cannot happen
                continue
            handler_entries.append(h_entry)
            handler_exits.extend(h_exits)

        # Body routing: exceptions land on every handler entry; when no
        # handler is catch-all they also escape (through finally).
        body_escape = list(handler_entries)
        if not (stmt.handlers and catch_all):
            body_escape.extend(inner_escape_tail)
        if not body_escape:
            body_escape = list(inner_escape_tail)
        self.escape = body_escape
        self.ret_target = inner_ret
        if f_entry is not None and self.loops:
            # break/continue would skip finally in this approximation;
            # route their suite building through a loop whose head is
            # the finally entry so no edge bypasses cleanup.
            self.loops = [_Loop(f_entry) for _ in outer_loops]
        b_entry, b_exits = self.seq(stmt.body)
        if stmt.orelse:
            o_entry, o_exits = self.seq(stmt.orelse)
            if o_entry is not None:
                for e in b_exits:
                    cfg._edge(e, o_entry, FLOW)
                b_exits = o_exits

        # Restore outer routing.
        self.escape = outer_escape
        self.ret_target = outer_ret
        self.loops = outer_loops

        normal_exits = list(b_exits) + handler_exits
        if f_entry is None:
            entry = b_entry if b_entry is not None else None
            if entry is None and handler_entries:
                entry = handler_entries[0]
            return entry, normal_exits

        # Everything funnels through finally; fan its exits out to the
        # continuations the guarded suites could have been heading for.
        for e in normal_exits:
            cfg._edge(e, f_entry, FLOW)
        fan_out: List[int] = []
        guarded = list(stmt.body) + [h for hh in stmt.handlers
                                     for h in hh.body] + list(stmt.orelse)
        # Uncaught exceptions continue outward after finally runs.
        for target in outer_escape:
            for f_exit in f_exits:
                cfg._edge(f_exit, target, EXC)
        if _suite_mentions(guarded, (ast.Return,)):
            for f_exit in f_exits:
                cfg._edge(f_exit, outer_ret, FLOW)
        if outer_loops and _suite_mentions(guarded, (ast.Break,)):
            for f_exit in f_exits:
                outer_loops[-1].breaks.append(f_exit)
        if outer_loops and _suite_mentions(guarded, (ast.Continue,)):
            for f_exit in f_exits:
                cfg._edge(f_exit, outer_loops[-1].head, FLOW)
        entry = b_entry if b_entry is not None else f_entry
        return entry, list(f_exits)


def build_cfg(func: ast.AST) -> CFG:
    """Build the CFG of one function (or module) body."""
    cfg = CFG()
    builder = _Builder(cfg)
    body = getattr(func, "body", None) or []
    entry, exits = builder.seq(body)
    if entry is not None:
        cfg._edge(cfg.entry, entry, FLOW)
    else:
        cfg._edge(cfg.entry, cfg.exit, FLOW)
    for e in exits:
        cfg._edge(e, cfg.exit, FLOW)
    return cfg
