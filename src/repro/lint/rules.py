"""The rule set: each rule enforces one paper-level invariant.

Every rule documents (a) the invariant, (b) the detection heuristic, and
(c) the sanctioned fix.  Heuristics are deliberately narrow: a lint
finding must be worth a human's attention, so each detector targets the
specific code shape that breaks the invariant rather than casting a wide
type-inference net.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence

from .engine import FileContext, Finding

__all__ = ["Rule", "ALL_RULES", "rule_ids",
           "DetSignRule", "FloatEqRule", "RngRule", "SetIterRule",
           "WallClockRule", "LocksetRule", "BufferCopyRule",
           "ShmLifetimeRule", "AsyncBlockingRule", "SerdeContractRule",
           "EpochFenceRule", "CounterPairRule"]


class Rule:
    """Base class: subclasses set ``id``/``title`` and implement checks."""

    id: str = "R0"
    title: str = ""
    #: One-line statement of the paper invariant the rule guards.
    invariant: str = ""

    def applies(self, ctx: FileContext) -> bool:  # pragma: no cover - trivial
        return True

    def check(self, ctx: FileContext) -> List[Finding]:
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: ast.AST,
                message: str) -> Finding:
        return Finding(self.id, ctx.posix, getattr(node, "lineno", 1),
                       getattr(node, "col_offset", 0), message)


# ----------------------------------------------------------------------
# Shared small helpers
# ----------------------------------------------------------------------
def _scoped_walk(scope: ast.AST):
    """Walk one scope's statements without descending into nested defs.

    Nested functions/classes get their own pass from :func:`_scopes`;
    skipping them here keeps findings single-counted and name resolution
    honest about which scope a binding belongs to.
    """
    stack = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _local_assigns(scope: ast.AST) -> Dict[str, ast.expr]:
    """Map simple ``name = <expr>`` assignments in one scope (last wins).

    Handles plain and annotated assignments — enough to resolve the
    ``det = a*b - c*d`` / ``guilty: set = set()`` staging the detectors
    care about, without real dataflow analysis.
    """
    out: Dict[str, ast.expr] = {}
    for node in _scoped_walk(scope):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            tgt = node.targets[0]
            if isinstance(tgt, ast.Name):
                out[tgt.id] = node.value
        elif (isinstance(node, ast.AnnAssign) and node.value is not None
                and isinstance(node.target, ast.Name)):
            out[node.target.id] = node.value
    return out


def _scopes(ctx: FileContext) -> List[ast.AST]:
    """Every analysis scope: the module plus each (nested) function."""
    scopes: List[ast.AST] = [ctx.tree]
    for node in ast.walk(ctx.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            scopes.append(node)
    return scopes


def _dotted(node: ast.AST) -> str:
    """Best-effort dotted-name rendering of an attribute chain."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts))


# ----------------------------------------------------------------------
# R1 — raw determinant sign tests
# ----------------------------------------------------------------------
class DetSignRule(Rule):
    """R1: no raw float determinant *sign decisions* outside predicates.

    Invariant (paper Section II.B): every orientation / incircle decision
    must go through the filtered predicates with exact-rational
    escalation; a plain float ``(a-b)*(c-d) - (e-f)*(g-h)`` compared
    against anything silently misclassifies near-degenerate input and
    manifests as inverted triangles or flip loops.

    Heuristic: flag a comparison whose operand is (or is a local name
    assigned from) a subtraction of two products where either product
    multiplies differences — the canonical 2x2 determinant-of-differences
    shape.  Magnitude uses (areas, error bounds) that never feed a
    comparison are not flagged.

    Fix: call :func:`repro.geometry.predicates.orient2d` / ``incircle``
    (or their batch forms).  The kernel's *inlined filter* copies are the
    sanctioned exception — each carries a pragma pointing at the shared
    error-bound constants.
    """

    id = "R1"
    title = "raw float determinant sign test outside geometry/predicates"
    invariant = "exact-arithmetic escalation for geometric predicates"

    def applies(self, ctx: FileContext) -> bool:
        return (ctx.in_pkg("repro")
                and not ctx.is_module("repro/geometry/predicates.py"))

    # -- detection -----------------------------------------------------
    @staticmethod
    def _resolve(expr: ast.expr, env: Dict[str, ast.expr],
                 depth: int = 3) -> ast.expr:
        while depth > 0 and isinstance(expr, ast.Name) and expr.id in env:
            expr = env[expr.id]
            depth -= 1
        return expr

    @classmethod
    def _is_diff(cls, expr: ast.expr, env: Dict[str, ast.expr]) -> bool:
        expr = cls._resolve(expr, env)
        return isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.Sub)

    @classmethod
    def _is_det_product(cls, expr: ast.expr, env: Dict[str, ast.expr]) -> bool:
        expr = cls._resolve(expr, env)
        if not (isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.Mult)):
            return False
        return cls._is_diff(expr.left, env) or cls._is_diff(expr.right, env)

    @classmethod
    def _is_det_expr(cls, expr: ast.expr, env: Dict[str, ast.expr]) -> bool:
        expr = cls._resolve(expr, env)
        if not (isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.Sub)):
            return False
        return (cls._is_det_product(expr.left, env)
                and cls._is_det_product(expr.right, env))

    def check(self, ctx: FileContext) -> List[Finding]:
        findings: List[Finding] = []
        for scope in _scopes(ctx):
            env = _local_assigns(scope)
            for node in _scoped_walk(scope):
                if not isinstance(node, ast.Compare):
                    continue
                operands = [node.left, *node.comparators]
                if any(self._is_det_expr(op, env) for op in operands):
                    findings.append(self.finding(
                        ctx, node,
                        "sign test on a raw float determinant — use "
                        "repro.geometry.predicates (orient2d/incircle) so "
                        "near-degenerate cases escalate to exact arithmetic"))
        return findings


# ----------------------------------------------------------------------
# R2 — float-literal equality
# ----------------------------------------------------------------------
class FloatEqRule(Rule):
    """R2: no ``==``/``!=`` against float literals in geometric code.

    Invariant: tolerance discipline.  ``x == 0.0`` in geometry code is
    either a real bug (the author meant a tolerance) or an *intentional*
    exact-bit comparison that deserves to say so.

    Heuristic: a comparison with ``==``/``!=`` where any operand is a
    float literal (or ``float(...)`` call) in ``geometry/``,
    ``delaunay/``, ``core/``.

    Fix: a tolerance helper, a predicate, or — for intentional exact-bit
    tests — :func:`repro.geometry.predicates.exact_eq`, which names the
    intent and is exempt here.
    """

    id = "R2"
    title = "float-literal equality comparison in geometric code"
    invariant = "tolerance discipline in geometry/delaunay/core"

    def applies(self, ctx: FileContext) -> bool:
        return (ctx.in_pkg("repro/geometry", "repro/delaunay", "repro/core")
                and not ctx.is_module("repro/geometry/predicates.py"))

    @staticmethod
    def _is_float_operand(expr: ast.expr) -> bool:
        if isinstance(expr, ast.Constant) and type(expr.value) is float:
            return True
        if (isinstance(expr, ast.UnaryOp)
                and isinstance(expr.operand, ast.Constant)
                and type(expr.operand.value) is float):
            return True
        if (isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name)
                and expr.func.id == "float"):
            return True
        return False

    def check(self, ctx: FileContext) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            operands = [node.left, *node.comparators]
            if any(self._is_float_operand(op) for op in operands):
                findings.append(self.finding(
                    ctx, node,
                    "float equality against a literal — use a tolerance "
                    "helper, or predicates.exact_eq(...) when bitwise "
                    "equality is the intent"))
        return findings


# ----------------------------------------------------------------------
# R3 — non-reproducible randomness
# ----------------------------------------------------------------------
class RngRule(Rule):
    """R3: algorithm randomness must be a seeded ``numpy.random.Generator``.

    Invariant: reproducibility across ranks and runs — "identical inputs
    + identical seed give byte-identical triangulations".  The stdlib
    ``random`` module and the legacy global ``np.random.*`` singleton
    share hidden state across call sites and threads, so a second kernel
    on another thread silently perturbs the first.

    Heuristic: any ``import random`` / ``from random import ...``, and
    any ``np.random.<f>`` attribute use where ``<f>`` is not an explicit
    generator constructor (``default_rng``, ``Generator``,
    ``SeedSequence``, ``PCG64``, ``Philox``, ``bit_generator``).

    Fix: thread a seeded ``np.random.default_rng(seed)`` through the
    call path (the kernel constructor already does).
    """

    id = "R3"
    title = "stdlib random / global numpy RNG in algorithm code"
    invariant = "seeded, thread-local determinism of all randomness"

    _ALLOWED_NP = {"default_rng", "Generator", "SeedSequence", "PCG64",
                   "Philox", "bit_generator", "BitGenerator"}

    def applies(self, ctx: FileContext) -> bool:
        return ctx.in_pkg("repro")

    def check(self, ctx: FileContext) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[0] == "random":
                        findings.append(self.finding(
                            ctx, node,
                            "stdlib 'random' has hidden global state — use a "
                            "seeded numpy.random.Generator threaded through "
                            "the call path"))
            elif isinstance(node, ast.ImportFrom):
                if node.module and node.module.split(".")[0] == "random":
                    findings.append(self.finding(
                        ctx, node,
                        "stdlib 'random' has hidden global state — use a "
                        "seeded numpy.random.Generator"))
            elif isinstance(node, ast.Attribute):
                # np.random.<attr> / numpy.random.<attr>
                val = node.value
                if (isinstance(val, ast.Attribute) and val.attr == "random"
                        and isinstance(val.value, ast.Name)
                        and val.value.id in ("np", "numpy")
                        and node.attr not in self._ALLOWED_NP):
                    findings.append(self.finding(
                        ctx, node,
                        f"np.random.{node.attr} uses the unseeded global "
                        "RNG — construct np.random.default_rng(seed) and "
                        "pass it explicitly"))
        return findings


# ----------------------------------------------------------------------
# R4 — set-order nondeterminism
# ----------------------------------------------------------------------
class SetIterRule(Rule):
    """R4: no iteration over sets in ``core``/``runtime`` control flow.

    Invariant: determinism across ranks.  Decoupled subdomain interfaces
    and the work-stealing message schedule must not depend on hash-order
    iteration; CPython's set order is insertion/hash dependent and
    differs across processes once ``PYTHONHASHSEED`` varies.

    Heuristic: a ``for`` target (loop or comprehension) whose iterable is
    a set display, set comprehension, ``set()``/``frozenset()`` call, a
    local name assigned from one of those, or any of the former wrapped
    in ``list``/``tuple``/``enumerate``/``reversed``.

    Fix: iterate ``sorted(the_set)`` (or keep a list alongside the set
    when membership *and* order both matter).
    """

    id = "R4"
    title = "iteration over a set/frozenset in order-sensitive code"
    invariant = "deterministic mesh output and message ordering across ranks"

    _WRAPPERS = {"list", "tuple", "enumerate", "reversed"}

    def applies(self, ctx: FileContext) -> bool:
        return ctx.in_pkg("repro/core", "repro/runtime")

    @classmethod
    def _is_setish(cls, expr: ast.expr, env: Dict[str, ast.expr],
                   depth: int = 3) -> bool:
        while depth > 0 and isinstance(expr, ast.Name) and expr.id in env:
            expr = env[expr.id]
            depth -= 1
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return True
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
            if expr.func.id in ("set", "frozenset"):
                return True
        if isinstance(expr, ast.BinOp) and isinstance(
                expr.op, (ast.BitOr, ast.BitAnd, ast.Sub)):
            return (cls._is_setish(expr.left, env, depth)
                    or cls._is_setish(expr.right, env, depth))
        return False

    def _iter_expr(self, expr: ast.expr) -> ast.expr:
        if (isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name)
                and expr.func.id in self._WRAPPERS and expr.args):
            return expr.args[0]
        return expr

    def check(self, ctx: FileContext) -> List[Finding]:
        findings: List[Finding] = []
        for scope in _scopes(ctx):
            env = _local_assigns(scope)
            for node in _scoped_walk(scope):
                iters: List[ast.expr] = []
                if isinstance(node, ast.For):
                    iters.append(node.iter)
                elif isinstance(node, (ast.ListComp, ast.SetComp,
                                       ast.GeneratorExp, ast.DictComp)):
                    iters.extend(gen.iter for gen in node.generators)
                for it in iters:
                    if self._is_setish(self._iter_expr(it), env):
                        findings.append(self.finding(
                            ctx, node,
                            "iteration order of a set is hash-dependent — "
                            "iterate sorted(...) so output and message "
                            "order are identical on every rank"))
        return findings


# ----------------------------------------------------------------------
# R5 — wall-clock reads in algorithm code
# ----------------------------------------------------------------------
class WallClockRule(Rule):
    """R5: wall-clock reads live in ``runtime.counters`` only.

    Invariant: observability funnels through one layer.  Ad-hoc
    ``time.perf_counter()`` pairs scattered through algorithm modules
    bypass the phase/counter sink (so ``--profile`` underreports) and
    make simulated-time runs (:mod:`repro.runtime.simulator`) diverge
    from profiled ones.

    Heuristic: calls to ``time.time`` / ``perf_counter`` / ``monotonic``
    / ``process_time`` (attribute or from-imported), anywhere in the
    ``repro`` package except ``runtime/counters.py``.

    Fix: ``with repro.runtime.counters.timed("name") as t:`` — records
    into the ambient profile sink *and* exposes ``t.elapsed``.
    """

    id = "R5"
    title = "wall-clock read outside runtime.counters"
    invariant = "all timing funnels through the counters layer"

    _CLOCKS = {"time", "perf_counter", "monotonic", "process_time",
               "perf_counter_ns", "monotonic_ns", "time_ns"}

    def applies(self, ctx: FileContext) -> bool:
        return (ctx.in_pkg("repro")
                and not ctx.is_module("repro/runtime/counters.py"))

    def check(self, ctx: FileContext) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                bad = [a.name for a in node.names if a.name in self._CLOCKS]
                if bad:
                    findings.append(self.finding(
                        ctx, node,
                        f"importing {', '.join(bad)} from time — route "
                        "timing through repro.runtime.counters.timed()"))
            elif isinstance(node, ast.Call):
                fn = node.func
                if (isinstance(fn, ast.Attribute)
                        and isinstance(fn.value, ast.Name)
                        and fn.value.id == "time"
                        and fn.attr in self._CLOCKS):
                    findings.append(self.finding(
                        ctx, node,
                        f"time.{fn.attr}() outside runtime.counters — use "
                        "counters.timed()/phase() so profiling sees it"))
        return findings


# ----------------------------------------------------------------------
# R6 — lockset rule for shared runtime state
# ----------------------------------------------------------------------
class LocksetRule(Rule):
    """R6: guarded shared state is touched only under its owning lock.

    Invariant (paper Section II.F): the RMA window is passive-target —
    every ``put``/``get``/``accumulate`` must be atomic with respect to
    each other, which the in-process backend realises with one owning
    lock around ``Window._data``.  The same goes for the collective
    exchange boxes of :class:`~repro.runtime.comm.ThreadComm`.

    Heuristic: any attribute access named ``_data``, ``bcast_box``,
    ``gather_box`` or ``reduce_box`` that is not lexically inside a
    ``with <...lock...>:`` block.  Constructor bodies (``__init__``) are
    exempt — the object is not yet published to other threads.

    Fix: take the lock; or, for deliberately unsynchronised access
    (MPI-style local load/store), carry a pragma and run under
    ``REPRO_SANITIZE=1`` so :mod:`repro.lint.tsan` checks it dynamically.

    Scope note: this rule (and the dynamic sanitizer that backs it)
    governs *in-process* shared state — the ``serial`` and ``threads``
    executor backends.  The ``processes`` backend's cross-process state
    (:class:`repro.runtime.executor.LoadBoard`) is synchronised by a
    ``multiprocessing`` lock the AST heuristic does recognise, but the
    sanitizer cannot observe other processes' accesses; that backend
    refuses to run under the sanitizer rather than vacuously passing.
    """

    id = "R6"
    title = "guarded shared state accessed outside its owning lock"
    invariant = "data-race-free RMA window and collective exchange"

    _GUARDED = {"_data", "bcast_box", "gather_box", "reduce_box"}

    def applies(self, ctx: FileContext) -> bool:  # pragma: no cover - trivial
        return True

    @staticmethod
    def _with_holds_lock(node: ast.With) -> bool:
        for item in node.items:
            name = _dotted(item.context_expr)
            if isinstance(item.context_expr, ast.Call):
                name = _dotted(item.context_expr.func)
            if "lock" in name.lower():
                return True
        return False

    def _under_lock(self, ctx: FileContext, node: ast.AST) -> bool:
        cur = ctx.parents.get(node)
        while cur is not None:
            if isinstance(cur, ast.With) and self._with_holds_lock(cur):
                return True
            if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if cur.name == "__init__":
                    return True  # construction precedes publication
                return False
            cur = ctx.parents.get(cur)
        return False

    def check(self, ctx: FileContext) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Attribute):
                continue
            if node.attr not in self._GUARDED:
                continue
            if self._under_lock(ctx, node):
                continue
            findings.append(self.finding(
                ctx, node,
                f"access to guarded shared state '.{node.attr}' outside a "
                "'with <lock>:' block — take the owning lock (see "
                "runtime/rma.py), or justify and sanitize"))
        return findings


# ----------------------------------------------------------------------
# R7 — Python-loop copies out of mesh buffers in finalize/serde code
# ----------------------------------------------------------------------
class BufferCopyRule(Rule):
    """R7: finalize/serde paths must not copy mesh buffers element-wise.

    Invariant (array-backed mesh core): ``to_mesh``/``compact`` hand back
    NumPy views or vectorized compactions of the SoA kernel storage, and
    the serde layer transports those buffers whole.  A Python ``for``
    loop (or comprehension) that walks ``pts``/``tri_v``/``points``/
    ``triangles``/... inside one of these functions reintroduces the
    O(n)-interpreter-ops export the refactor removed — the 172M-triangle
    runs of Section IV pay it as minutes, not microseconds.

    Heuristic: a loop or comprehension whose *iterable* mentions a mesh
    buffer name (``pts``, ``tri_v``, ``tri_n``, ``vertex_tri``, ``px``,
    ``tv``, ``tn``, ``vt``, ``points``, ``triangles``, ``segments``),
    lexically inside a function named ``compact``/``to_mesh``/
    ``to_trimesh``/``laplacian_smooth``/``metric_smooth``/``pack_*``/
    ``unpack_*``/``buffers_*``/``batch_*``/``*_batch``.  The ``batch``
    names cover the cavity engine's vectorised insertion paths
    (``walk_batch``, ``carve_batch``, ...): those exist *because* they
    replace per-element predicate loops, so a Python walk over the
    buffers inside one is a regression by definition.  The smoothing
    names guard the whole-mesh Jacobi smoothers the same way — they
    were rewritten from per-vertex Gauss-Seidel loops and must not
    regress.  Loops over other state (constraint lists, label dicts,
    per-candidate cavity sets) are not flagged.

    Fix: vectorize — boolean masks, fancy indexing, ``remap[tris]`` —
    or, when a per-element walk is genuinely required (e.g. constraint
    filtering), hoist it out of the finalize/serde function or carry a
    justified pragma.
    """

    id = "R7"
    title = "per-element Python loop over mesh buffers in finalize/serde"
    invariant = "zero-Python-loop mesh finalize and transport"

    _FUNC_NAMES = {"compact", "to_mesh", "to_trimesh",
                   "laplacian_smooth", "metric_smooth"}
    _FUNC_PREFIXES = ("pack_", "unpack_", "buffers_", "batch_")
    _FUNC_SUFFIXES = ("_batch",)
    _BUFFERS = {"pts", "tri_v", "tri_n", "vertex_tri", "px", "tv", "tn",
                "vt", "points", "triangles", "segments"}

    def applies(self, ctx: FileContext) -> bool:
        return ctx.in_pkg("repro")

    def _in_scope(self, name: str) -> bool:
        return (name in self._FUNC_NAMES
                or name.startswith(self._FUNC_PREFIXES)
                or name.endswith(self._FUNC_SUFFIXES))

    def _mentions_buffer(self, expr: ast.expr) -> Optional[str]:
        for node in ast.walk(expr):
            if isinstance(node, ast.Attribute) and node.attr in self._BUFFERS:
                return node.attr
            if isinstance(node, ast.Name) and node.id in self._BUFFERS:
                return node.id
        return None

    def check(self, ctx: FileContext) -> List[Finding]:
        findings: List[Finding] = []
        for scope in _scopes(ctx):
            if not (isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and self._in_scope(scope.name)):
                continue
            for node in _scoped_walk(scope):
                iters: List[ast.expr] = []
                if isinstance(node, ast.For):
                    iters.append(node.iter)
                elif isinstance(node, (ast.ListComp, ast.SetComp,
                                       ast.GeneratorExp, ast.DictComp)):
                    iters.extend(gen.iter for gen in node.generators)
                for it in iters:
                    buf = self._mentions_buffer(it)
                    if buf is not None:
                        findings.append(self.finding(
                            ctx, node,
                            f"Python loop over mesh buffer '{buf}' in "
                            f"'{scope.name}' — finalize/serde must stay "
                            "vectorized (masks, fancy indexing); per-element "
                            "walks undo the zero-copy export"))
                        break
        return findings


# The dataflow rules live in their own modules (they import ``Rule``
# and the shared helpers from here, so the import must come after those
# definitions — the modules see this module partially initialised, which
# is fine for the names they need).
from .rules_lifetime import ShmLifetimeRule  # noqa: E402
from .rules_async import AsyncBlockingRule  # noqa: E402
from .rules_serde import SerdeContractRule  # noqa: E402
from .rules_epoch import EpochFenceRule  # noqa: E402
from .rules_counters import CounterPairRule  # noqa: E402

ALL_RULES: Sequence[Rule] = (
    DetSignRule(),
    FloatEqRule(),
    RngRule(),
    SetIterRule(),
    WallClockRule(),
    LocksetRule(),
    BufferCopyRule(),
    ShmLifetimeRule(),
    AsyncBlockingRule(),
    SerdeContractRule(),
    EpochFenceRule(),
    CounterPairRule(),
)


def rule_ids() -> List[str]:
    return [r.id for r in ALL_RULES]
