"""R11 — epoch-fence protocol for pool results, and shutdown orderings.

PR 6's abort machinery works by *epoch fencing*: every dispatched batch
carries the pool's current epoch, and a result frame may only be
consumed after comparing its epoch against the pool's — a stale frame
(raced with ``request_abort``) must be routed to the discard path, or
an aborted batch's buffers get stitched into the next batch's mesh.
PR 7 added two orderings with the same flavour: the worker pool must be
warmed *before* the listening socket exists (workers forked after bind
would inherit the fd), and shutdown must abort/stop the pool *before*
draining client connections (or in-flight frames write to dead pipes).

Both are structural properties a reviewer checks by eye today; R11
checks them with the CFG dominator relation (the fence must dominate
the consumption — hold on *every* path into it) and first-mention
ordering (for the warm/bind and abort/shutdown pairs).
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from .engine import FileContext, Finding
from .rules import Rule, _dotted, _scopes
from .rules_lifetime import _own_exprs

__all__ = ["EpochFenceRule"]

#: Result-consumption calls that must sit behind an epoch fence.
_CONSUME = {"wire_to_buffers", "buffers_from_shm"}

#: (first, then) ordered pairs: within one function that mentions both
#: tokens, the first must appear before the second.
_ORDERINGS: Tuple[Tuple[Tuple[str, ...], Tuple[str, ...], str], ...] = (
    (("warm_pool",), ("start_server", "start_unix_server"),
     "warm the worker pool before binding the listening socket — "
     "workers forked after bind inherit the fd"),
    (("request_abort", "abort_call", "abort"), ("shutdown_pool",),
     "abort in-flight work before shutting the pool down — "
     "otherwise shutdown blocks on results nobody will read"),
)


def _mention_lines(func: ast.AST, tokens: Tuple[str, ...]) -> Optional[int]:
    """First line mentioning any token as a name, attribute, or string
    constant (the getattr-protocol style writes ``getattr(b, "abort")``)."""
    best: Optional[int] = None
    for node in ast.walk(func):
        hit = False
        if isinstance(node, ast.Name) and node.id in tokens:
            hit = True
        elif isinstance(node, ast.Attribute) and node.attr in tokens:
            hit = True
        elif (isinstance(node, ast.Constant)
                and isinstance(node.value, str) and node.value in tokens):
            hit = True
        if hit:
            line = getattr(node, "lineno", None)
            if line is not None and (best is None or line < best):
                best = line
    return best


def _compares_epoch(stmt: ast.stmt) -> bool:
    for node in ast.walk(stmt):
        if isinstance(node, ast.Compare):
            for op in [node.left, *node.comparators]:
                for sub in ast.walk(op):
                    if (isinstance(sub, ast.Name)
                            and "epoch" in sub.id.lower()):
                        return True
                    if (isinstance(sub, ast.Attribute)
                            and "epoch" in sub.attr.lower()):
                        return True
    return False


class EpochFenceRule(Rule):
    """R11: pool results are consumed only behind an epoch comparison,
    and the warm/bind + abort/shutdown orderings hold.

    Invariant: aborted batches never leak results into live ones; the
    listening socket fd never leaks into forked workers; shutdown never
    deadlocks on a full result queue.

    Heuristic:

    * **Fence** — in methods of classes that track an ``_epoch``
      attribute, every ``wire_to_buffers``/``buffers_from_shm`` call
      must be *dominated* (CFG dominators, so it holds on every path)
      by a statement comparing something named ``*epoch*``.  Classes
      without ``_epoch`` (the legacy fork-per-call path) are exempt —
      they have no concurrent abort to race with.
    * **Ordering** — a function mentioning both members of a protocol
      pair (``warm_pool`` before ``start_server``/``start_unix_server``;
      ``request_abort``/``abort`` before ``shutdown_pool``) must mention
      them in that order.  Mentions include ``getattr(obj, "name")``
      string constants, which is how the service speaks to optional
      backend hooks.

    Fix: hoist the epoch comparison so it guards every route to the
    consumption (see ``PoolStream._handle``), or reorder the calls.
    """

    id = "R11"
    title = "un-fenced pool-result consumption / protocol order violation"
    invariant = "epoch-fenced result consumption; warm→bind, abort→shutdown"

    def applies(self, ctx: FileContext) -> bool:  # pragma: no cover - trivial
        return True

    # -- fence check ---------------------------------------------------
    def _epoch_classes(self, ctx: FileContext) -> List[ast.ClassDef]:
        out: List[ast.ClassDef] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for sub in ast.walk(node):
                if isinstance(sub, ast.Attribute) and "epoch" in sub.attr:
                    out.append(node)
                    break
        return out

    def _check_fences(self, ctx: FileContext) -> List[Finding]:
        findings: List[Finding] = []
        for cls in self._epoch_classes(ctx):
            for item in cls.body:
                if not isinstance(item, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                    continue
                findings.extend(self._check_method(ctx, item))
        return findings

    def _check_method(self, ctx: FileContext,
                      func: ast.AST) -> List[Finding]:
        # Locate consumption statements among the function's own
        # statements (nested defs excluded — they run elsewhere).
        cfg = ctx.cfg_of(func)
        consume_nodes: List[Tuple[int, ast.Call]] = []
        for node in cfg.stmt_nodes():
            for own in _own_exprs(node.stmt):
                for sub in ast.walk(own):
                    if isinstance(sub, ast.Call):
                        last = _dotted(sub.func).rsplit(".", 1)[-1]
                        if last in _CONSUME:
                            consume_nodes.append((node.idx, sub))
        if not consume_nodes:
            return []
        dom = cfg.dominators()
        findings: List[Finding] = []
        for idx, call in consume_nodes:
            fenced = False
            for d in dom[idx]:
                stmt = cfg.nodes[d].stmt
                if stmt is not None and _compares_epoch(stmt):
                    fenced = True
                    break
            if not fenced:
                name = _dotted(call.func)
                findings.append(self.finding(
                    ctx, call,
                    f"{name}(...) consumes a pool result without an epoch "
                    "fence on every path — compare the frame's epoch "
                    "against the pool's before consuming (stale frames go "
                    "to the discard path)"))
        return findings

    # -- ordering check ------------------------------------------------
    def _check_orderings(self, ctx: FileContext) -> List[Finding]:
        findings: List[Finding] = []
        for scope in _scopes(ctx):
            if not isinstance(scope, (ast.FunctionDef,
                                      ast.AsyncFunctionDef)):
                continue
            for first, then, why in _ORDERINGS:
                body = ast.Module(body=scope.body, type_ignores=[])
                l_first = _mention_lines(body, first)
                l_then = _mention_lines(body, then)
                if l_first is None or l_then is None:
                    continue
                if l_then < l_first:
                    findings.append(Finding(
                        self.id, ctx.posix, l_then, 0,
                        f"'{'/'.join(then)}' before "
                        f"'{'/'.join(first)}' in '{scope.name}' — {why}"))
        return findings

    def check(self, ctx: FileContext) -> List[Finding]:
        return self._check_fences(ctx) + self._check_orderings(ctx)
