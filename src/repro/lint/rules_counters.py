"""R12 — paired counter samples are emitted together.

The scaling simulator (:mod:`repro.runtime.simulator`) calibrates its
cost model from *rate* streams: bytes-per-second needs both the
``shm_nbytes`` and the ``shm_seconds`` sample of the same event.  A
code path that observes one half of a pair produces streams of unequal
length and the calibration silently mis-joins samples from different
events — the model still fits, it just fits garbage.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Tuple

from .engine import FileContext, Finding
from .rules import Rule, _scopes

__all__ = ["CounterPairRule", "PAIRED_SAMPLES"]

#: Sample families that must be observed together (same function scope).
PAIRED_SAMPLES: Tuple[Tuple[str, str], ...] = (
    ("serde.shm_nbytes", "serde.shm_seconds"),
    ("executor.item_seconds", "executor.item_bytes"),
)


class CounterPairRule(Rule):
    """R12: paired ``observe`` streams are emitted in the same scope.

    Invariant: calibration joins (nbytes, seconds) samples by position;
    the streams must advance in lockstep.

    Heuristic: collect every ``observe("<name>", ...)`` call (method or
    free function, literal first argument) per function scope; for each
    known pair, a scope that observes exactly one member is flagged at
    that call.  Scopes that observe neither, or both, pass.  Dynamic
    names (non-literal first argument) are not checked.

    Fix: emit both members per event — see ``buffers_to_shm``'s
    ``sink.observe("serde.shm_nbytes", ...)`` /
    ``sink.observe("serde.shm_seconds", ...)`` pattern — or route both
    through a helper that does.
    """

    id = "R12"
    title = "unpaired counter sample (one half of a calibration pair)"
    invariant = "paired observe() streams advance in lockstep"

    def applies(self, ctx: FileContext) -> bool:
        # The counters layer itself defines observe(); exempt.
        return not ctx.is_module("repro/runtime/counters.py")

    @staticmethod
    def _observed(scope: ast.AST) -> Dict[str, ast.Call]:
        """Map sample-name -> first observing call in this scope."""
        out: Dict[str, ast.Call] = {}
        stack: List[ast.AST] = list(getattr(scope, "body", []))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            if isinstance(node, ast.Call):
                fn = node.func
                is_observe = ((isinstance(fn, ast.Attribute)
                               and fn.attr == "observe")
                              or (isinstance(fn, ast.Name)
                                  and fn.id == "observe"))
                if (is_observe and node.args
                        and isinstance(node.args[0], ast.Constant)
                        and isinstance(node.args[0].value, str)):
                    out.setdefault(node.args[0].value, node)
            stack.extend(ast.iter_child_nodes(node))
        return out

    def check(self, ctx: FileContext) -> List[Finding]:
        findings: List[Finding] = []
        for scope in _scopes(ctx):
            observed = self._observed(scope)
            if not observed:
                continue
            for a, b in PAIRED_SAMPLES:
                have_a, have_b = a in observed, b in observed
                if have_a == have_b:
                    continue
                present, missing = (a, b) if have_a else (b, a)
                findings.append(self.finding(
                    ctx, observed[present],
                    f"observe('{present}') without its pair "
                    f"'{missing}' in the same scope — calibration joins "
                    "these streams by position, emit both per event"))
        return findings
