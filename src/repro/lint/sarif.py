"""SARIF 2.1.0 output for CI code-scanning upload.

Emits the minimal static-analysis interchange document GitHub's
``upload-sarif`` action accepts: one run, one driver, one rule entry
per rule in the active set (id, short description, the invariant as
full description), one result per finding with a physical location.
Severity maps ``error``→``error`` and anything else→``warning``; the
engine's pragma/crash diagnostics (P0/P1/E9) ride along as ordinary
rules so they annotate pull requests too.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from .engine import Finding, RULESET_VERSION

__all__ = ["format_sarif"]

_META_RULES = (
    ("P0", "pragma without justification or naming an unknown rule"),
    ("P1", "stale pragma suppressing nothing"),
    ("E9", "unreadable/unparseable file or internal lint error"),
)


def format_sarif(findings: Sequence[Finding], rules: Sequence) -> str:
    rule_entries: List[Dict[str, object]] = []
    index: Dict[str, int] = {}
    for r in rules:
        index[r.id] = len(rule_entries)
        rule_entries.append({
            "id": r.id,
            "shortDescription": {"text": r.title},
            "fullDescription": {"text": r.invariant or r.title},
            "helpUri": "https://example.invalid/repro-lint#" + r.id.lower(),
        })
    for rid, title in _META_RULES:
        if rid not in index:
            index[rid] = len(rule_entries)
            rule_entries.append({
                "id": rid,
                "shortDescription": {"text": title},
            })

    results: List[Dict[str, object]] = []
    for f in findings:
        result: Dict[str, object] = {
            "ruleId": f.rule,
            "level": "error" if f.severity == "error" else "warning",
            "message": {"text": f.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": f.path,
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": f.line,
                        "startColumn": f.col + 1,
                    },
                },
            }],
        }
        if f.rule in index:
            result["ruleIndex"] = index[f.rule]
        results.append(result)

    doc = {
        "$schema": ("https://raw.githubusercontent.com/oasis-tcs/"
                    "sarif-spec/master/Schemata/sarif-schema-2.1.0.json"),
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-lint",
                    "version": RULESET_VERSION,
                    "informationUri": "https://example.invalid/repro-lint",
                    "rules": rule_entries,
                },
            },
            "columnKind": "utf16CodeUnits",
            "results": results,
        }],
    }
    return json.dumps(doc, indent=2)
