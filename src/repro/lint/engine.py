"""Lint driver: file walking, pragma accounting, finding suppression.

The engine is rule-agnostic: it parses every ``.py`` file once, hands the
tree (with parent back-links) to each rule, then reconciles the raw
findings against the per-line pragma inventory.  Pragma hygiene is
enforced here, not in the rules:

* ``P0`` — a pragma with no justification, or naming an unknown rule;
* ``P1`` — a pragma that suppressed nothing (stale excuse).

Both keep the acceptance bar honest: every surviving pragma names a real
finding and says *why* the code is allowed to keep its shape.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = ["Finding", "FileContext", "LintRunner", "run_lint",
           "RULESET_VERSION", "iter_python_files"]

#: Bumped whenever a rule is added or its detection heuristic changes, so
#: machine consumers (CI, ``--stats-json``) can pin expectations.
RULESET_VERSION = "1.1"

# ``lint: disable=R1`` or ``lint: disable=R1,R6 -- why this is fine``
# (only real COMMENT tokens are scanned, so docstring examples don't count).
_PRAGMA_RE = re.compile(
    r"#\s*lint:\s*disable=([A-Za-z]\d+(?:\s*,\s*[A-Za-z]\d+)*)\s*(.*)$"
)
# Leading separator of the justification text ("--", "—", ":", ...).
_JUSTIFY_STRIP = " \t-—–:"

_SKIP_DIRS = {".git", "__pycache__", ".venv", "venv", "node_modules",
              "build", "dist"}


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def format_text(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: {self.rule}: {self.message}"

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass
class Pragma:
    """A parsed ``# lint: disable=...`` comment on one physical line."""

    line: int
    rules: Tuple[str, ...]
    justification: str
    used: set = field(default_factory=set)

    @property
    def bare(self) -> bool:
        return not self.justification


class FileContext:
    """Everything a rule needs to inspect one file."""

    def __init__(self, path: Path, source: str, tree: ast.AST) -> None:
        self.path = path
        #: Normalised forward-slash path used by rule scoping.
        self.posix = path.as_posix()
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self.parents: Dict[ast.AST, ast.AST] = {}
        for node in ast.walk(tree):
            for child in ast.iter_child_nodes(node):
                self.parents[child] = node

    # ------------------------------------------------------------------
    def in_pkg(self, *fragments: str) -> bool:
        """Is this file inside any of the given package sub-paths?

        Fragments are slash-joined module paths like ``"repro/geometry"``;
        matching is by path substring with separators pinned, so
        ``repro/core`` does not match ``repro/core_utils``.
        """
        for frag in fragments:
            if f"/{frag}/" in self.posix or self.posix.endswith(f"/{frag}.py"):
                return True
        return False

    def is_module(self, *module_files: str) -> bool:
        """Exact module-file match, e.g. ``"repro/geometry/predicates.py"``."""
        return any(self.posix.endswith(f"/{m}") for m in module_files)

    def enclosing_function(self, node: ast.AST) -> Optional[ast.AST]:
        cur = self.parents.get(node)
        while cur is not None:
            if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return cur
            cur = self.parents.get(cur)
        return None

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""


def parse_pragmas(source: str) -> Dict[int, Pragma]:
    """Extract pragmas from *comment tokens* (never from string literals)."""
    pragmas: Dict[int, Pragma] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [(t.start[0], t.string) for t in tokens
                    if t.type == tokenize.COMMENT]
    except (tokenize.TokenizeError, IndentationError, SyntaxError):
        return pragmas
    for lineno, text in comments:
        m = _PRAGMA_RE.search(text)
        if not m:
            continue
        rules = tuple(r.strip().upper() for r in m.group(1).split(","))
        justification = m.group(2).strip(_JUSTIFY_STRIP).strip()
        pragmas[lineno] = Pragma(line=lineno, rules=rules,
                                 justification=justification)
    return pragmas


def iter_python_files(paths: Iterable[str]) -> List[Path]:
    out: List[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            for f in sorted(p.rglob("*.py")):
                if any(part in _SKIP_DIRS or part.endswith(".egg-info")
                       for part in f.parts):
                    continue
                out.append(f)
        elif p.suffix == ".py":
            out.append(p)
    return out


class LintRunner:
    """Run a rule set over files, reconciling findings with pragmas."""

    def __init__(self, rules: Sequence) -> None:
        self.rules = list(rules)
        self._known_ids = {r.id for r in self.rules} | {"P0", "P1", "E9"}

    # ------------------------------------------------------------------
    def run_file(self, path: Path) -> List[Finding]:
        posix = path.as_posix()
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            return [Finding("E9", posix, 1, 0, f"unreadable file: {exc}")]
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            return [Finding("E9", posix, exc.lineno or 1, 0,
                            f"syntax error: {exc.msg}")]

        ctx = FileContext(path, source, tree)
        pragmas = parse_pragmas(source)

        raw: List[Finding] = []
        for rule in self.rules:
            if rule.applies(ctx):
                raw.extend(rule.check(ctx))

        survived: List[Finding] = []
        for f in raw:
            pragma = pragmas.get(f.line)
            if pragma is not None and f.rule in pragma.rules:
                pragma.used.add(f.rule)
                continue
            survived.append(f)

        # Pragma hygiene (not suppressible by pragmas themselves).
        for pragma in pragmas.values():
            unknown = [r for r in pragma.rules if r not in self._known_ids]
            if unknown:
                survived.append(Finding(
                    "P0", posix, pragma.line, 0,
                    f"pragma names unknown rule(s) {', '.join(unknown)}"))
            if pragma.bare:
                survived.append(Finding(
                    "P0", posix, pragma.line, 0,
                    "pragma has no justification — append '-- <one line why>'"))
            stale = [r for r in pragma.rules
                     if r in self._known_ids and r not in pragma.used]
            if stale:
                survived.append(Finding(
                    "P1", posix, pragma.line, 0,
                    f"stale pragma: rule(s) {', '.join(stale)} found nothing "
                    "on this line — remove the excuse"))
        survived.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return survived

    def run(self, paths: Iterable[str]) -> Tuple[List[Finding], int]:
        """Lint ``paths``; returns ``(findings, files_scanned)``."""
        files = iter_python_files(paths)
        findings: List[Finding] = []
        for f in files:
            findings.extend(self.run_file(f))
        return findings, len(files)


def run_lint(paths: Iterable[str],
             rules: Optional[Sequence] = None) -> Tuple[List[Finding], int]:
    """Convenience entry point used by tests and the CLI."""
    if rules is None:
        from .rules import ALL_RULES
        rules = ALL_RULES
    return LintRunner(rules).run(paths)


def format_json(findings: Sequence[Finding], files_scanned: int,
                rules: Sequence) -> str:
    return json.dumps(
        {
            "version": RULESET_VERSION,
            "files_scanned": files_scanned,
            "n_findings": len(findings),
            "rules": [
                {"id": r.id, "title": r.title} for r in rules
            ],
            "findings": [f.as_dict() for f in findings],
        },
        indent=2,
    )
