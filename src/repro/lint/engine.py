"""Lint driver: file walking, pragma accounting, finding suppression.

The engine is rule-agnostic: it parses every ``.py`` file once, hands the
tree (with parent back-links) to each rule, then reconciles the raw
findings against the per-line pragma inventory.  Pragma hygiene is
enforced here, not in the rules:

* ``P0`` — a pragma with no justification, or naming an unknown rule;
* ``P1`` — a pragma that suppressed nothing (stale excuse).

Both keep the acceptance bar honest: every surviving pragma names a real
finding and says *why* the code is allowed to keep its shape.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = ["Finding", "FileContext", "LintRunner", "run_lint",
           "RULESET_VERSION", "iter_python_files", "DEFAULT_SEVERITY_MAP",
           "load_baseline", "write_baseline", "apply_baseline"]

#: Bumped whenever a rule is added or its detection heuristic changes, so
#: machine consumers (CI, ``--stats-json``) can pin expectations.
RULESET_VERSION = "2.0"

#: Per-tree rule-severity overrides: a finding whose path contains the
#: key as a directory part gets the mapped severity for that rule —
#: ``"off"`` drops it, ``"warn"`` keeps it visible without failing the
#: run.  Test/example helpers legitimately read wall clocks (R5), hold
#: short-lived wire envelopes across asserts (R8), sleep in async
#: scaffolding (R9) and observe single streams to exercise the counter
#: machinery (R12); holding them to production severity would bury real
#: findings under justified noise.  Engine-level findings (P0/P1/E9)
#: are never demoted.
DEFAULT_SEVERITY_MAP: Dict[str, Dict[str, str]] = {
    "tests": {"R5": "off", "R8": "off", "R9": "off", "R10": "off",
              "R12": "off"},
    "examples": {"R5": "warn"},
}

# ``lint: disable=R1`` or ``lint: disable=R1,R6 -- why this is fine``
# (only real COMMENT tokens are scanned, so docstring examples don't count).
_PRAGMA_RE = re.compile(
    r"#\s*lint:\s*disable=([A-Za-z]\d+(?:\s*,\s*[A-Za-z]\d+)*)\s*(.*)$"
)
# Leading separator of the justification text ("--", "—", ":", ...).
_JUSTIFY_STRIP = " \t-—–:"

_SKIP_DIRS = {".git", "__pycache__", ".venv", "venv", "node_modules",
              "build", "dist"}


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    severity: str = "error"

    def format_text(self) -> str:
        tag = "" if self.severity == "error" else f" [{self.severity}]"
        return (f"{self.path}:{self.line}:{self.col + 1}: "
                f"{self.rule}{tag}: {self.message}")

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "severity": self.severity,
        }

    def baseline_key(self) -> Tuple[str, str, int, str]:
        return (self.rule, self.path, self.line, self.message)


@dataclass
class Pragma:
    """A parsed ``# lint: disable=...`` comment on one physical line."""

    line: int
    rules: Tuple[str, ...]
    justification: str
    used: set = field(default_factory=set)

    @property
    def bare(self) -> bool:
        return not self.justification


class FileContext:
    """Everything a rule needs to inspect one file."""

    def __init__(self, path: Path, source: str, tree: ast.AST) -> None:
        self.path = path
        #: Normalised forward-slash path used by rule scoping.
        self.posix = path.as_posix()
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self.parents: Dict[ast.AST, ast.AST] = {}
        for node in ast.walk(tree):
            for child in ast.iter_child_nodes(node):
                self.parents[child] = node
        self._cfg_cache: Dict[int, object] = {}

    def cfg_of(self, scope: ast.AST):
        """Build (once) and cache the CFG of a function/module scope, so
        the dataflow rules share graphs instead of rebuilding per rule."""
        key = id(scope)
        cfg = self._cfg_cache.get(key)
        if cfg is None:
            from .cfg import build_cfg
            cfg = build_cfg(scope)
            self._cfg_cache[key] = cfg
        return cfg

    # ------------------------------------------------------------------
    def in_pkg(self, *fragments: str) -> bool:
        """Is this file inside any of the given package sub-paths?

        Fragments are slash-joined module paths like ``"repro/geometry"``;
        matching is by path substring with separators pinned, so
        ``repro/core`` does not match ``repro/core_utils``.
        """
        for frag in fragments:
            if f"/{frag}/" in self.posix or self.posix.endswith(f"/{frag}.py"):
                return True
        return False

    def is_module(self, *module_files: str) -> bool:
        """Exact module-file match, e.g. ``"repro/geometry/predicates.py"``."""
        return any(self.posix.endswith(f"/{m}") for m in module_files)

    def enclosing_function(self, node: ast.AST) -> Optional[ast.AST]:
        cur = self.parents.get(node)
        while cur is not None:
            if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return cur
            cur = self.parents.get(cur)
        return None

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""


def parse_pragmas(source: str) -> Dict[int, Pragma]:
    """Extract pragmas from *comment tokens* (never from string literals)."""
    pragmas: Dict[int, Pragma] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [(t.start[0], t.string) for t in tokens
                    if t.type == tokenize.COMMENT]
    except (tokenize.TokenizeError, IndentationError, SyntaxError):
        return pragmas
    for lineno, text in comments:
        m = _PRAGMA_RE.search(text)
        if not m:
            continue
        rules = tuple(r.strip().upper() for r in m.group(1).split(","))
        justification = m.group(2).strip(_JUSTIFY_STRIP).strip()
        pragmas[lineno] = Pragma(line=lineno, rules=rules,
                                 justification=justification)
    return pragmas


def iter_python_files(paths: Iterable[str]) -> List[Path]:
    out: List[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            for f in sorted(p.rglob("*.py")):
                if any(part in _SKIP_DIRS or part.endswith(".egg-info")
                       for part in f.parts):
                    continue
                out.append(f)
        elif p.suffix == ".py":
            out.append(p)
    return out


class LintRunner:
    """Run a rule set over files, reconciling findings with pragmas.

    ``catalog`` is the full rule-id universe (defaults to the rules
    actually run): pragma *unknown-rule* checks (P0) go against the
    catalog, while *staleness* (P1) is only judged for rules that ran —
    otherwise ``--select R5`` would condemn every legitimate pragma
    naming an unselected rule.  ``severity_map`` applies per-tree
    overrides (see :data:`DEFAULT_SEVERITY_MAP`).
    """

    def __init__(self, rules: Sequence,
                 catalog: Optional[Iterable[str]] = None,
                 severity_map: Optional[Dict[str, Dict[str, str]]] = None,
                 ) -> None:
        self.rules = list(rules)
        self._selected_ids = {r.id for r in self.rules}
        base = set(catalog) if catalog is not None else set(self._selected_ids)
        self._catalog_ids = base | {"P0", "P1", "E9"}
        self.severity_map = (DEFAULT_SEVERITY_MAP if severity_map is None
                             else severity_map)

    # ------------------------------------------------------------------
    def _apply_severity(self, f: Finding) -> Optional[Finding]:
        if f.rule in ("P0", "P1", "E9"):
            return f
        parts = Path(f.path).parts
        for tree, overrides in self.severity_map.items():
            if tree in parts and f.rule in overrides:
                level = overrides[f.rule]
                if level == "off":
                    return None
                if level != f.severity:
                    return Finding(f.rule, f.path, f.line, f.col,
                                   f.message, level)
        return f

    def run_file(self, path: Path) -> List[Finding]:
        posix = path.as_posix()
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            return [Finding("E9", posix, 1, 0, f"unreadable file: {exc}")]
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            return [Finding("E9", posix, exc.lineno or 1, 0,
                            f"syntax error: {exc.msg}")]

        ctx = FileContext(path, source, tree)
        pragmas = parse_pragmas(source)

        raw: List[Finding] = []
        for rule in self.rules:
            try:
                if rule.applies(ctx):
                    raw.extend(rule.check(ctx))
            except Exception as exc:  # rule bug ≠ clean file: surface it
                raw.append(Finding(
                    "E9", posix, 1, 0,
                    f"internal error in rule {rule.id}: "
                    f"{type(exc).__name__}: {exc}"))

        survived: List[Finding] = []
        for f in raw:
            pragma = pragmas.get(f.line)
            if pragma is not None and f.rule in pragma.rules:
                pragma.used.add(f.rule)
                continue
            survived.append(f)

        # Pragma hygiene (not suppressible by pragmas themselves).
        for pragma in pragmas.values():
            unknown = [r for r in pragma.rules if r not in self._catalog_ids]
            if unknown:
                survived.append(Finding(
                    "P0", posix, pragma.line, 0,
                    f"pragma names unknown rule(s) {', '.join(unknown)}"))
            if pragma.bare:
                survived.append(Finding(
                    "P0", posix, pragma.line, 0,
                    "pragma has no justification — append '-- <one line why>'"))
            stale = [r for r in pragma.rules
                     if r in self._selected_ids and r not in pragma.used]
            if stale:
                survived.append(Finding(
                    "P1", posix, pragma.line, 0,
                    f"stale pragma: rule(s) {', '.join(stale)} found nothing "
                    "on this line — remove the excuse"))
        survived = [sf for sf in (self._apply_severity(f) for f in survived)
                    if sf is not None]
        survived.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return survived

    def run(self, paths: Iterable[str]) -> Tuple[List[Finding], int]:
        """Lint ``paths``; returns ``(findings, files_scanned)`` with
        findings in byte-stable (path, line, col, rule) order."""
        files = iter_python_files(paths)
        findings: List[Finding] = []
        for f in files:
            findings.extend(self.run_file(f))
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return findings, len(files)


def run_lint(paths: Iterable[str],
             rules: Optional[Sequence] = None) -> Tuple[List[Finding], int]:
    """Convenience entry point used by tests and the CLI."""
    if rules is None:
        from .rules import ALL_RULES
        rules = ALL_RULES
    return LintRunner(rules).run(paths)


# ----------------------------------------------------------------------
# Findings baseline (strict-on-new-code)
# ----------------------------------------------------------------------
def load_baseline(path: Path) -> set:
    """Load a baseline file; returns the set of suppressed finding keys.

    Format: ``{"ruleset": ..., "entries": [{rule,path,line,message}]}``.
    A missing file is an empty baseline (strict everywhere).
    """
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        return set()
    return {(e["rule"], e["path"], int(e["line"]), e["message"])
            for e in data.get("entries", [])}


def write_baseline(path: Path, findings: Sequence[Finding]) -> None:
    entries = [
        {"rule": f.rule, "path": f.path, "line": f.line,
         "message": f.message}
        for f in findings if f.severity == "error"
    ]
    path.write_text(json.dumps(
        {"ruleset": RULESET_VERSION, "entries": entries}, indent=2) + "\n",
        encoding="utf-8")


def apply_baseline(findings: Sequence[Finding],
                   baseline: set) -> Tuple[List[Finding], int]:
    """Split findings into (kept, n_suppressed) against a baseline."""
    kept: List[Finding] = []
    suppressed = 0
    for f in findings:
        if f.baseline_key() in baseline:
            suppressed += 1
        else:
            kept.append(f)
    return kept, suppressed


def format_json(findings: Sequence[Finding], files_scanned: int,
                rules: Sequence) -> str:
    return json.dumps(
        {
            "version": RULESET_VERSION,
            "files_scanned": files_scanned,
            "n_findings": len(findings),
            "rules": [
                {"id": r.id, "title": r.title} for r in rules
            ],
            "findings": [f.as_dict() for f in findings],
        },
        indent=2,
    )
