"""R9 — no blocking calls inside ``async def`` bodies.

The meshing service (:mod:`repro.runtime.service`) runs one asyncio
event loop per daemon; a single blocking call inside a coroutine stalls
*every* connected client and defeats the request-batching the service
exists for.  The paper's timing claims assume the dispatch loop stays
responsive while the pool grinds.

The sanctioned escape hatch is the service's thread-pool helper
(``await offload(fn, *args)`` / ``loop.run_in_executor``): the blocking
callable is passed *by reference*, so no flagged call expression ever
appears inside the coroutine body.
"""

from __future__ import annotations

import ast
from typing import List, Set

from .engine import FileContext, Finding
from .rules import Rule, _dotted

__all__ = ["AsyncBlockingRule"]


class AsyncBlockingRule(Rule):
    """R9: coroutines must not call known-blocking primitives inline.

    Invariant: the service event loop never blocks — slow work is
    offloaded to the executor thread pool.

    Heuristic: inside every ``async def`` body (not nested sync defs or
    lambdas, which execute elsewhere), flag non-awaited calls to:

    * ``time.sleep``;
    * socket/pipe receive-side methods (``.recv``, ``.recv_bytes``,
      ``.recv_into``, ``.accept``, ``.recv_exact``,
      ``.read_frame_blocking``) — awaited forms are async-library
      methods and exempt;
    * the pool entry point ``.map_workitems`` (blocks until the whole
      batch drains);
    * file I/O: ``open``, ``os.unlink``/``os.remove``/``os.rename``/
      ``os.stat``, ``os.path.exists``.

    Fix: ``await offload(fn, *args)`` (service helper) or
    ``await loop.run_in_executor(None, fn, *args)``.
    """

    id = "R9"
    title = "blocking call inside an async def body"
    invariant = "the service event loop never blocks"

    _BLOCKING_METHODS = {"recv", "recv_bytes", "recv_into", "accept",
                         "recv_exact", "read_frame_blocking",
                         "map_workitems"}
    _BLOCKING_DOTTED = {"time.sleep", "os.unlink", "os.remove",
                        "os.rename", "os.stat", "os.path.exists"}
    _BLOCKING_NAMES = {"open"}

    def applies(self, ctx: FileContext) -> bool:  # pragma: no cover - trivial
        return True

    # ------------------------------------------------------------------
    def _coroutine_calls(self, func: ast.AsyncFunctionDef):
        """Yield ``(call, awaited)`` for calls executing in the
        coroutine itself (skips nested defs and lambdas)."""
        stack: List[ast.AST] = list(func.body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef, ast.Lambda)):
                continue
            if isinstance(node, ast.Await):
                if isinstance(node.value, ast.Call):
                    yield node.value, True
                    stack.extend(ast.iter_child_nodes(node.value))
                    continue
            if isinstance(node, ast.Call):
                yield node, False
            stack.extend(ast.iter_child_nodes(node))

    def _is_blocking(self, call: ast.Call, awaited: bool) -> str:
        fn = call.func
        dotted = _dotted(fn)
        if dotted in self._BLOCKING_DOTTED:
            return dotted
        if isinstance(fn, ast.Name) and fn.id in self._BLOCKING_NAMES:
            return fn.id
        if (not awaited and isinstance(fn, ast.Attribute)
                and fn.attr in self._BLOCKING_METHODS):
            return dotted or fn.attr
        return ""

    def check(self, ctx: FileContext) -> List[Finding]:
        findings: List[Finding] = []
        seen: Set[int] = set()
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.AsyncFunctionDef):
                continue
            for call, awaited in self._coroutine_calls(node):
                if id(call) in seen:
                    continue
                seen.add(id(call))
                name = self._is_blocking(call, awaited)
                if name:
                    findings.append(self.finding(
                        ctx, call,
                        f"blocking call {name}(...) inside async def "
                        f"'{node.name}' stalls the event loop — offload "
                        "it: 'await offload(fn, *args)' or "
                        "'await loop.run_in_executor(None, fn, *args)'"))
        return findings
