"""R8 — shm/wire resource lifetime (CFG + dataflow).

The shared-memory transport (:mod:`repro.runtime.serde`) hands out
values that own kernel resources: ``buffers_to_shm`` returns a
``(name, meta)`` pair backed by a POSIX shared-memory segment, and
``buffers_to_wire`` returns a wire envelope that may reference one.
A segment that is neither attached-and-unlinked (``buffers_from_shm``)
nor explicitly discarded (``discard_wire``) outlives the process — on
the 172M-element runs of the paper's Section IV that is gigabytes of
``/dev/shm`` leaked per aborted batch.

R8 runs a gen/kill reaching analysis over the function CFG: an acquire
binds a fact to its assignment targets; *any* subsequent use of those
names (a release call, shipping over a queue, storing into a field,
returning) transfers ownership and kills the fact.  A fact still live
at the function's normal or raise exit leaked on that path.  Treating
every use as a transfer is deliberately generous — R8 under-reports
aliasing games but never cries wolf on code that visibly hands the
value to someone.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .engine import FileContext, Finding
from .rules import Rule, _dotted, _scopes
from . import dataflow

__all__ = ["ShmLifetimeRule", "ACQUIRE_FUNCS", "RELEASE_FUNCS"]

#: Calls whose return value owns a transport resource.
ACQUIRE_FUNCS = {"buffers_to_shm", "buffers_to_wire"}
#: Calls that consume/release such a value (used in messages only; the
#: kill set is "any use", see module docstring).
RELEASE_FUNCS = {"discard_wire", "wire_to_buffers", "buffers_from_shm",
                 "unlink"}


def _last_component(call: ast.Call) -> str:
    name = _dotted(call.func)
    return name.rsplit(".", 1)[-1] if name else ""


def _own_exprs(stmt: ast.stmt) -> List[ast.AST]:
    """The expressions evaluated *at* this CFG node (headers only for
    compound statements — their bodies are separate nodes)."""
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.target, stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [i.context_expr for i in stmt.items] + [
            i.optional_vars for i in stmt.items if i.optional_vars]
    if isinstance(stmt, ast.Try):
        return []
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                         ast.ClassDef)):
        return []
    return [stmt]


def _names_in(nodes: Sequence[ast.AST]) -> Set[str]:
    out: Set[str] = set()
    for n in nodes:
        for sub in ast.walk(n):
            if isinstance(sub, ast.Name):
                out.add(sub.id)
    return out


def _target_names(target: ast.expr) -> Optional[Set[str]]:
    """Plain name(s) bound by an assignment target; None if the target
    stores into an object (attribute/subscript = escape, not a binding)."""
    if isinstance(target, ast.Name):
        return {target.id}
    if isinstance(target, (ast.Tuple, ast.List)):
        names: Set[str] = set()
        for elt in target.elts:
            if isinstance(elt, ast.Starred):
                elt = elt.value
            if isinstance(elt, ast.Name):
                names.add(elt.id)
            else:
                return None
        return names or None
    return None


class _Fact:
    __slots__ = ("fid", "names", "node", "kind")

    def __init__(self, fid: int, names: Set[str], node: ast.AST,
                 kind: str) -> None:
        self.fid = fid
        self.names = names
        self.node = node
        self.kind = kind


class ShmLifetimeRule(Rule):
    """R8: every acquired shm/wire value reaches a release on all paths.

    Invariant: leak-free shared-memory transport across *every* control
    path — including the exception edges the abort/shutdown machinery of
    PR 6–7 exercises on purpose.

    Heuristic: see the module docstring.  Two finding shapes:

    * a bound acquire whose fact is live at the normal or raise exit —
      some path drops the value without using it;
    * a bare-expression acquire (``serde.buffers_to_shm(b)`` as a
      statement) — the owner is dropped on the spot.

    Fix: release on the error path too (``try:
    ... except BaseException: serde.discard_wire(wire); raise``), or
    return the value so the caller owns it.  ``serde.py`` itself is
    exempt: it implements the lifecycle this rule enforces.
    """

    id = "R8"
    title = "shm/wire value leaked on some control path"
    invariant = "leak-free shared-memory transport on all paths"

    def applies(self, ctx: FileContext) -> bool:
        return not ctx.is_module("repro/runtime/serde.py")

    # ------------------------------------------------------------------
    def _acquire_in(self, stmt: ast.stmt) -> Optional[Tuple[ast.Call, str]]:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                last = _last_component(node)
                if last in ACQUIRE_FUNCS:
                    return node, last
        return None

    def check(self, ctx: FileContext) -> List[Finding]:
        findings: List[Finding] = []
        for scope in _scopes(ctx):
            findings.extend(self._check_scope(ctx, scope))
        return findings

    def _check_scope(self, ctx: FileContext,
                     scope: ast.AST) -> List[Finding]:
        cfg = ctx.cfg_of(scope)
        facts: List[_Fact] = []
        gen: Dict[int, Set[int]] = {}
        kill: Dict[int, Set[int]] = {}
        findings: List[Finding] = []

        # Pass 1: find acquires, build facts / immediate-drop findings.
        for node in cfg.stmt_nodes():
            stmt = node.stmt
            hit = None
            for own in _own_exprs(stmt):
                for sub in ast.walk(own):
                    if (isinstance(sub, ast.Call)
                            and _last_component(sub) in ACQUIRE_FUNCS):
                        hit = sub
                        break
                if hit is not None:
                    break
            if hit is None:
                continue
            fn = _last_component(hit)
            if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                targets = (stmt.targets if isinstance(stmt, ast.Assign)
                           else [stmt.target])
                if len(targets) == 1:
                    names = _target_names(targets[0])
                    if names is None:
                        continue  # stored into an object: escapes
                    fact = _Fact(len(facts), names, hit,
                                 "shm segment" if fn == "buffers_to_shm"
                                 else "wire envelope")
                    facts.append(fact)
                    gen.setdefault(node.idx, set()).add(fact.fid)
                    continue
            if isinstance(stmt, ast.Expr) and stmt.value is hit:
                findings.append(self.finding(
                    ctx, hit,
                    f"{fn}(...) result is dropped on the spot — bind it "
                    "and release via "
                    "discard_wire/wire_to_buffers/buffers_from_shm, or "
                    "return it so the caller owns it"))
            # Nested inside another call / return / store: ownership
            # visibly transfers; nothing to track.

        if not facts:
            return findings

        # Pass 2: kills — any statement using a fact's name.
        for node in cfg.stmt_nodes():
            used = _names_in(_own_exprs(node.stmt))
            for fact in facts:
                if fact.names & used and gen.get(node.idx, set()) != {fact.fid}:
                    kill.setdefault(node.idx, set()).add(fact.fid)

        in_sets = dataflow.solve(cfg, gen, kill)
        live_exit, live_raise = dataflow.live_at(cfg, in_sets)
        for fact in facts:
            paths = []
            if fact.fid in live_exit:
                paths.append("a normal exit path")
            if fact.fid in live_raise:
                paths.append("an exception path")
            if not paths:
                continue
            names = ", ".join(sorted(fact.names))
            findings.append(self.finding(
                ctx, fact.node,
                f"{fact.kind} '{names}' can leak on {' and '.join(paths)}"
                " — every path must release it "
                "(discard_wire/wire_to_buffers/buffers_from_shm), ship "
                "it, or return it; guard the error edge with 'except "
                "BaseException: discard + raise'"))
        return findings
