"""Mesh analysis: anisotropy metrics, gradation profiles, reports."""

from .metrics import (
    alignment_to_surface,
    element_directions,
    histogram,
    orthogonality_of_normals,
    size_profile,
)
from .report import mesh_report

__all__ = [
    "alignment_to_surface",
    "element_directions",
    "histogram",
    "mesh_report",
    "orthogonality_of_normals",
    "size_profile",
]
