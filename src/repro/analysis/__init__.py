"""Mesh analysis: anisotropy metrics, gradation profiles, reports."""

from .metrics import (
    alignment_to_surface,
    element_directions,
    histogram,
    metric_conformity,
    metric_edge_lengths,
    orthogonality_of_normals,
    size_profile,
)
from .report import mesh_report

__all__ = [
    "alignment_to_surface",
    "element_directions",
    "histogram",
    "mesh_report",
    "metric_conformity",
    "metric_edge_lengths",
    "orthogonality_of_normals",
    "size_profile",
]
