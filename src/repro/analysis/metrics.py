"""Anisotropic mesh quality analysis (after Loseille et al., paper ref. [8]).

The paper's motivation for projection-based decomposition is that
arbitrary dividing paths "disturb the alignment and orthogonality of the
anisotropic elements".  This module quantifies exactly those properties
so the claim is measurable:

* :func:`element_directions` — per-element stretch direction and ratio
  from the element's inertia (steiner) ellipse;
* :func:`alignment_to_surface` — how well stretched elements align with
  the nearest surface tangent (1 = perfectly aligned, 0 = orthogonal);
* :func:`orthogonality_of_normals` — how orthogonal the short axis of
  each stretched element is to the surface (the boundary-layer property);
* :func:`size_profile` — element size vs. distance from the geometry
  (the gradation curve of paper Fig. 10);
* :func:`histogram` — fixed-width text histogram used by the reports.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..delaunay.mesh import TriMesh

__all__ = [
    "element_directions",
    "alignment_to_surface",
    "orthogonality_of_normals",
    "size_profile",
    "histogram",
    "metric_edge_lengths",
    "metric_conformity",
]


def element_directions(mesh: TriMesh) -> Tuple[np.ndarray, np.ndarray]:
    """Per-element stretch direction (unit vectors) and stretch ratio.

    Computed from the covariance of the vertex offsets about the
    centroid: the principal eigenvector is the stretching direction, and
    the sqrt-eigenvalue ratio the anisotropy ratio (1 = isotropic).
    """
    p = mesh.points
    t = mesh.triangles
    a, b, c = p[t[:, 0]], p[t[:, 1]], p[t[:, 2]]
    cent = (a + b + c) / 3.0
    da, db, dc = a - cent, b - cent, c - cent
    # 2x2 covariance per element.
    xx = (da[:, 0] ** 2 + db[:, 0] ** 2 + dc[:, 0] ** 2) / 3.0
    yy = (da[:, 1] ** 2 + db[:, 1] ** 2 + dc[:, 1] ** 2) / 3.0
    xy = (da[:, 0] * da[:, 1] + db[:, 0] * db[:, 1]
          + dc[:, 0] * dc[:, 1]) / 3.0
    # Eigen-decomposition of [[xx, xy], [xy, yy]] in closed form.
    tr = xx + yy
    det = xx * yy - xy * xy
    disc = np.sqrt(np.maximum(tr * tr / 4.0 - det, 0.0))
    lam1 = tr / 2.0 + disc
    lam2 = np.maximum(tr / 2.0 - disc, 0.0)
    # Principal direction for lam1: both (lam1 - yy, xy) and
    # (xy, lam1 - xx) are valid eigenvectors; pick the better-conditioned
    # one per element (the other degenerates when lam1 ~ yy or ~ xx).
    v1 = np.column_stack([lam1 - yy, xy])
    v2 = np.column_stack([xy, lam1 - xx])
    use2 = (np.abs(v2).sum(axis=1) > np.abs(v1).sum(axis=1))
    v = np.where(use2[:, None], v2, v1)
    # Fully isotropic elements (xy = 0, xx = yy): any direction; use +x.
    norm = np.hypot(v[:, 0], v[:, 1])
    v[norm == 0, 0] = 1.0
    norm = np.where(norm == 0, 1.0, norm)
    dirs = v / norm[:, None]
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = np.sqrt(np.where(lam2 > 0, lam1 / lam2, np.inf))
    return dirs, ratio


def _nearest_surface_tangent(surface: np.ndarray, query: np.ndarray
                             ) -> np.ndarray:
    """Unit tangent of the closed surface polyline nearest to each query."""
    surface = np.asarray(surface, dtype=np.float64)
    seg_a = surface
    seg_b = np.roll(surface, -1, axis=0)
    tans = seg_b - seg_a
    lens2 = (tans**2).sum(axis=1)
    lens = np.sqrt(np.where(lens2 == 0, 1.0, lens2))
    unit = tans / lens[:, None]
    out = np.empty((len(query), 2))
    for i, q in enumerate(query):
        # True point-to-segment distances (vectorised over segments).
        ap = q[None, :] - seg_a
        t = np.clip((ap * tans).sum(axis=1)
                    / np.where(lens2 == 0, 1.0, lens2), 0.0, 1.0)
        closest = seg_a + t[:, None] * tans
        d2 = ((q[None, :] - closest) ** 2).sum(axis=1)
        out[i] = unit[int(np.argmin(d2))]
    return out


def alignment_to_surface(mesh: TriMesh, surface: np.ndarray,
                         *, min_ratio: float = 4.0) -> np.ndarray:
    """|cos| between each stretched element's long axis and the nearest
    surface tangent.  Only elements with stretch ratio >= ``min_ratio``
    are scored (isotropic elements have no meaningful direction).
    Returns the per-element scores (empty if no stretched elements)."""
    dirs, ratio = element_directions(mesh)
    sel = np.isfinite(ratio) & (ratio >= min_ratio)
    if not sel.any():
        return np.empty(0)
    cents = mesh.centroids()[sel]
    tans = _nearest_surface_tangent(surface, cents)
    cosv = np.abs((dirs[sel] * tans).sum(axis=1))
    return np.clip(cosv, 0.0, 1.0)


def orthogonality_of_normals(mesh: TriMesh, surface: np.ndarray,
                             *, min_ratio: float = 4.0) -> np.ndarray:
    """|sin| between stretched elements' long axis and the surface normal
    — equivalently how orthogonal the SHORT axis is to the surface.
    1 = the BL stacking property holds perfectly."""
    return alignment_to_surface(mesh, surface, min_ratio=min_ratio)


def size_profile(mesh: TriMesh, surface: np.ndarray,
                 bins: Sequence[float]) -> List[Dict[str, float]]:
    """Mean element area per distance band from the surface (Fig. 10)."""
    surface = np.asarray(surface, dtype=np.float64)
    cents = mesh.centroids()
    areas = np.abs(mesh.areas())
    d = np.empty(len(cents))
    # Chunked distance to the surface point cloud.
    for lo in range(0, len(cents), 2048):
        chunk = cents[lo:lo + 2048]
        dd = ((chunk[:, None, :] - surface[None, :, :]) ** 2).sum(axis=2)
        d[lo:lo + 2048] = np.sqrt(dd.min(axis=1))
    out = []
    for lo, hi in zip(bins[:-1], bins[1:]):
        sel = (d >= lo) & (d < hi)
        if sel.any():
            out.append({
                "d_lo": float(lo), "d_hi": float(hi),
                "n": int(sel.sum()),
                "mean_area": float(areas[sel].mean()),
                "mean_aspect": float(mesh.aspect_ratios()[sel].mean()),
            })
    return out


def histogram(values: np.ndarray, *, bins: int = 10, width: int = 40,
              label: str = "") -> str:
    """Fixed-width text histogram."""
    values = np.asarray(values, dtype=np.float64)
    values = values[np.isfinite(values)]
    if len(values) == 0:
        return f"{label}: (no data)"
    counts, edges = np.histogram(values, bins=bins)
    peak = counts.max() or 1
    rows = [f"{label} (n={len(values)})"] if label else []
    for c, lo, hi in zip(counts, edges[:-1], edges[1:]):
        bar = "#" * int(round(width * c / peak))
        rows.append(f"  [{lo:10.4g}, {hi:10.4g})  {c:>7}  {bar}")
    return "\n".join(rows)


# ----------------------------------------------------------------------
# Quality in the metric (unit-mesh criterion)
# ----------------------------------------------------------------------
def metric_edge_lengths(mesh: TriMesh, metric_field) -> np.ndarray:
    """Metric length of every unique mesh edge under ``metric_field``.

    Lengths use the graded (Alauzet) formula of
    :meth:`repro.metric.MetricField.edge_lengths`, evaluated at the
    field's values interpolated onto the mesh vertices — an adapted mesh
    is a *unit mesh* when these all fall in ``[1/sqrt(2), sqrt(2)]``.
    """
    t = mesh.triangles
    edges = np.unique(np.sort(np.concatenate(
        [t[:, [0, 1]], t[:, [1, 2]], t[:, [2, 0]]]), axis=1), axis=0)
    field = metric_field.interpolate_field(mesh.points)
    return field.edge_lengths(edges)


def metric_conformity(mesh: TriMesh, metric_field,
                      *, l_min: Optional[float] = None,
                      l_max: Optional[float] = None) -> float:
    """Fraction of mesh edges with metric length in the unit band.

    The band defaults to the classical ``[1/sqrt(2), sqrt(2)]``
    (:data:`repro.delaunay.adapt.LOW_BAND` /
    :data:`~repro.delaunay.adapt.HIGH_BAND`); 1.0 means the mesh
    perfectly discretises the metric.
    """
    from ..delaunay.adapt import HIGH_BAND, LOW_BAND

    lo = LOW_BAND if l_min is None else float(l_min)
    hi = HIGH_BAND if l_max is None else float(l_max)
    lengths = metric_edge_lengths(mesh, metric_field)
    if len(lengths) == 0:
        return 1.0
    return float(((lengths >= lo) & (lengths <= hi)).mean())
