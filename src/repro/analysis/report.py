"""One-call mesh reports combining validation, quality, and anisotropy.

``mesh_report`` assembles everything a user wants to see after a
push-button run into a plain-text block: the validation verdict, the
quality summary, the gradation profile, and — when the surface is given —
the anisotropic alignment statistics that motivate the paper's
decomposition design.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..delaunay.mesh import TriMesh
from ..delaunay.smooth import validate_mesh
from .metrics import alignment_to_surface, element_directions, histogram, size_profile

__all__ = ["mesh_report"]


def mesh_report(mesh: TriMesh, *, surface: Optional[np.ndarray] = None,
                check_delaunay: bool = False) -> str:
    """Human-readable report for a finished mesh."""
    parts = []
    rep = validate_mesh(mesh, check_delaunay=check_delaunay)
    parts.append(rep.summary())

    q = mesh.quality_summary()
    parts.append(
        "quality: "
        + ", ".join(f"{k}={v:.4g}" if isinstance(v, float) else f"{k}={v}"
                    for k, v in q.items())
    )

    _, ratio = element_directions(mesh)
    finite = ratio[np.isfinite(ratio)]
    if len(finite):
        parts.append(histogram(np.minimum(finite, 50.0), bins=8,
                               label="stretch ratio (capped at 50)"))

    if surface is not None and mesh.n_triangles:
        scores = alignment_to_surface(mesh, surface)
        if len(scores):
            parts.append(
                f"anisotropic elements: {len(scores)}; surface alignment "
                f"|cos| median {np.median(scores):.3f} "
                f"(1.0 = layers perfectly aligned)"
            )
        # Distance bands out to the mesh bounding-box diagonal.
        lo = mesh.points.min(axis=0)
        hi = mesh.points.max(axis=0)
        d_max = float(np.hypot(*(hi - lo)))
        bins = np.geomspace(1e-4, max(d_max, 1e-3), 6)
        prof = size_profile(mesh, np.asarray(surface), bins)
        for row in prof:
            parts.append(
                f"  d in [{row['d_lo']:.3g}, {row['d_hi']:.3g}): "
                f"{row['n']} elements, mean area {row['mean_area']:.3g}, "
                f"mean aspect {row['mean_aspect']:.1f}"
            )
    return "\n".join(parts)
