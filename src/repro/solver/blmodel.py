"""Boundary-layer model problem with an exact solution.

The quantitative argument behind the whole paper — anisotropic layers
capture boundary-layer solutions with far fewer elements — made
measurable.  The model problem is the classic 1D-structure reaction-
diffusion boundary layer posed on the unit square:

    -eps * Lap(u) + u = f,   u = g on the boundary,

with the manufactured exact solution

    u(x, y) = exp(-y / sqrt(eps))

(a layer of width ~sqrt(eps) along y = 0, constant in x — exactly the
wall-normal gradient structure of Section II.A).  Substituting gives
f = 0: u is an exact solution of the homogeneous equation, so the only
data is the boundary condition and every measured error is
discretisation error.

Helpers build matched anisotropic (layered) and isotropic meshes of the
square and report the P1 L2 error per degree of freedom.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np
import scipy.sparse.linalg as spla

from ..delaunay.mesh import TriMesh
from ..delaunay.refine import refine_pslg
from .fem import apply_dirichlet, assemble_mass, assemble_stiffness, boundary_nodes

__all__ = ["BLModelResult", "exact_solution", "layered_mesh",
           "isotropic_mesh", "solve_bl_model"]


def exact_solution(pts: np.ndarray, eps: float) -> np.ndarray:
    """u(x, y) = exp(-y / sqrt(eps))."""
    return np.exp(-pts[:, 1] / math.sqrt(eps))


def layered_mesh(eps: float, *, nx: int = 24, growth: float = 1.35,
                 first: float = None) -> TriMesh:
    """Anisotropic layered mesh of the unit square.

    y-coordinates follow a geometric progression resolving the sqrt(eps)
    layer (first spacing ~ sqrt(eps)/4 by default); x is uniform — the
    structure the BL extrusion produces.
    """
    delta = math.sqrt(eps)
    first = first if first is not None else delta / 4.0
    ys = [0.0]
    h = first
    while ys[-1] < 1.0:
        ys.append(min(ys[-1] + h, 1.0))
        h *= growth
    ys = np.asarray(ys)
    xs = np.linspace(0.0, 1.0, nx + 1)
    pts = np.array([(x, y) for y in ys for x in xs])
    tris = []
    ncol = nx + 1
    for j in range(len(ys) - 1):
        for i in range(nx):
            a = j * ncol + i
            b = a + 1
            c = a + ncol
            d = c + 1
            tris.append((a, b, d))
            tris.append((a, d, c))
    return TriMesh(pts, np.asarray(tris, dtype=np.int32))


def isotropic_mesh(target_points: int) -> TriMesh:
    """Quality isotropic mesh of the unit square with ~target_points DOF."""
    # n points ~ area / (elem area / 2) -> max_area ~ 2 / target... P1
    # vertex count ~ triangles / 2; triangles ~ 2 * area / max_area.
    max_area = max(1.0 / max(target_points, 8), 1e-7)
    pts = np.array([(0, 0), (1, 0), (1, 1), (0, 1)], dtype=float)
    segs = np.array([(0, 1), (1, 2), (2, 3), (3, 0)])
    return refine_pslg(pts, segs, max_area=max_area)


@dataclass
class BLModelResult:
    mesh: TriMesh
    l2_error: float
    n_dof: int

    @property
    def error_per_sqrt_dof(self) -> float:
        return self.l2_error * math.sqrt(self.n_dof)


def solve_bl_model(mesh: TriMesh, eps: float) -> BLModelResult:
    """Solve -eps Lap(u) + u = 0 with the exact Dirichlet data; return the
    L2 error against the manufactured solution."""
    if eps <= 0:
        raise ValueError("eps must be positive")
    K = assemble_stiffness(mesh, eps)
    M = assemble_mass(mesh)
    A = (K + M).tocsr()
    exact = exact_solution(mesh.points, eps)
    bn = boundary_nodes(mesh)
    A, b = apply_dirichlet(A, np.zeros(mesh.n_points), bn, exact[bn])
    u = spla.spsolve(A.tocsc(), b)
    err = u - exact
    l2 = math.sqrt(max(float(err @ (M @ err)), 0.0))
    return BLModelResult(mesh=mesh, l2_error=l2, n_dof=mesh.n_points)
