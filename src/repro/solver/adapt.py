"""Metric-driven anisotropic adaptation loop (solve -> adapt -> re-solve).

This module closes the loop the paper's meshes exist for: a P1 FEM
solve on the current mesh feeds Hessian recovery
(:meth:`repro.metric.MetricField.from_hessian`), the recovered metric is
gradation-limited, the mesh is adapted to it with the local-operation
engine (:func:`repro.delaunay.adapt_mesh`), and the problem is re-solved
on the adapted mesh — until the error-vs-DOF curve flattens or the cycle
budget runs out.

The built-in model problem is an interior shear layer,

    u(x, y) = tanh(s / delta),   s = y - 0.5 - A sin(2 pi x),

a Poisson problem ``-Lap(u) = f`` with exact Dirichlet data whose
solution has O(delta) normal thickness along a curved front — the
canonical demonstration that an anisotropic (metric-adapted) mesh
reaches a target L2 error at far fewer DOF than uniform refinement.

The adapt step can optionally be dispatched through the runtime
executor (``backend="processes"``) using the serde-packed work item
from :mod:`repro.core.pipeline`; serde round trips are exact, so every
backend produces bit-identical adapted meshes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field as dataclass_field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..delaunay.adapt import HIGH_BAND, LOW_BAND, AdaptReport, adapt_mesh
from ..delaunay.mesh import TriMesh
from ..metric import MetricField
from .convergence import pcg
from .fem import apply_dirichlet, assemble_mass, assemble_stiffness

__all__ = [
    "ShearLayerProblem",
    "AdaptCycle",
    "AdaptLoopResult",
    "solve_on_mesh",
    "l2_error",
    "adapt_loop",
]


# ----------------------------------------------------------------------
# Model problem
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShearLayerProblem:
    """``-Lap(u) = f`` on the unit square with an interior shear layer.

    ``u = tanh(s / delta)`` with ``s = y - 0.5 - amplitude sin(2 pi x)``;
    Dirichlet data is the exact solution on the whole boundary.  The
    layer thickness ``delta`` controls how anisotropic the optimal mesh
    is (aspect ratio ~ layer curvature radius / delta).
    """

    delta: float = 0.05
    amplitude: float = 0.1

    def signed_distance(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        return y - 0.5 - self.amplitude * np.sin(2.0 * np.pi * x)

    def exact(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        return np.tanh(self.signed_distance(x, y) / self.delta)

    def forcing(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """``f = -Lap(u)`` in closed form.

        With ``t = tanh(s/delta)``:  ``u_xx + u_yy =
        (1 - t^2) [ s_xx / delta - 2 t (s_x^2 + 1) / delta^2 ]``
        (``s_y = 1``, ``s_yy = 0``).
        """
        two_pi = 2.0 * np.pi
        s = self.signed_distance(x, y)
        s_x = -self.amplitude * two_pi * np.cos(two_pi * x)
        s_xx = self.amplitude * two_pi * two_pi * np.sin(two_pi * x)
        t = np.tanh(s / self.delta)
        lap = (1.0 - t * t) * (
            s_xx / self.delta
            - 2.0 * t * (s_x * s_x + 1.0) / (self.delta * self.delta)
        )
        return -lap


# ----------------------------------------------------------------------
# Solve / error
# ----------------------------------------------------------------------
def solve_on_mesh(mesh: TriMesh, problem: ShearLayerProblem,
                  *, tol: float = 1e-10) -> np.ndarray:
    """P1 FEM solution of the model problem on ``mesh``.

    Stiffness from :func:`repro.solver.fem.assemble_stiffness`, load by
    lumped-mass quadrature of the closed-form forcing, exact Dirichlet
    data on every boundary node, Jacobi-PCG solve.
    """
    x, y = mesh.points[:, 0], mesh.points[:, 1]
    A = assemble_stiffness(mesh)
    M = assemble_mass(mesh, lumped=True)
    b = M @ problem.forcing(x, y)
    from .fem import boundary_nodes

    nodes = boundary_nodes(mesh)
    A, b = apply_dirichlet(A, b, nodes, problem.exact(x[nodes], y[nodes]))
    res = pcg(A, b, tol=tol)
    return res.x


def l2_error(mesh: TriMesh, u: np.ndarray,
             problem: ShearLayerProblem) -> float:
    """Lumped-mass L2 norm of ``u - u_exact`` over the mesh."""
    x, y = mesh.points[:, 0], mesh.points[:, 1]
    e = np.asarray(u, dtype=np.float64) - problem.exact(x, y)
    M = assemble_mass(mesh, lumped=True)
    return float(math.sqrt(max(e @ (M @ e), 0.0)))


def _mesh_edges(mesh: TriMesh) -> np.ndarray:
    t = mesh.triangles
    e = np.concatenate([t[:, [0, 1]], t[:, [1, 2]], t[:, [2, 0]]])
    return np.unique(np.sort(e, axis=1), axis=0)


# ----------------------------------------------------------------------
# The loop
# ----------------------------------------------------------------------
@dataclass
class AdaptCycle:
    """Per-cycle record of the adaptation loop."""

    cycle: int
    dof: int
    error: float
    conformity: float
    report: Optional[AdaptReport] = None

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "cycle": self.cycle,
            "dof": self.dof,
            "error": self.error,
            "conformity": self.conformity,
        }
        if self.report is not None:
            out["report"] = self.report.to_dict()
        return out


@dataclass
class AdaptLoopResult:
    """Final mesh/solution plus the error-vs-DOF history."""

    mesh: TriMesh
    solution: np.ndarray
    metric: Optional[MetricField]
    history: List[AdaptCycle] = dataclass_field(default_factory=list)
    converged: bool = False

    @property
    def error(self) -> float:
        return self.history[-1].error if self.history else math.nan

    @property
    def dof(self) -> int:
        return self.history[-1].dof if self.history else 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "converged": self.converged,
            "history": [c.to_dict() for c in self.history],
        }


def _adapt_step(mesh: TriMesh, metric: MetricField, *,
                holes: Sequence[Tuple[float, float]],
                max_passes: int, smooth_iterations: int,
                protect_segments: bool,
                backend: Optional[str]) -> Tuple[TriMesh, AdaptReport]:
    """Run one adapt step locally or through the runtime executor."""
    if backend is None:
        return adapt_mesh(
            mesh, metric, holes=holes, max_passes=max_passes,
            smooth_iterations=smooth_iterations,
            protect_segments=protect_segments,
        )
    from ..core import pipeline
    from ..runtime import executor

    impl = executor.get_backend(executor.resolve_backend_name(backend))
    payload = pipeline.pack_adapt_item(
        mesh, metric, holes=holes, max_passes=max_passes,
        smooth_iterations=smooth_iterations,
        protect_segments=protect_segments,
    )
    (out,) = impl.map_workitems(pipeline.adapt_workitem, [payload])
    return pipeline.unpack_adapt_result(out)


def adapt_loop(
    mesh: TriMesh,
    *,
    problem: Optional[ShearLayerProblem] = None,
    cycles: int = 5,
    eps: float = 5e-3,
    h_min: float = 1e-3,
    h_max: float = 0.5,
    grading: float = 0.5,
    max_passes: int = 3,
    smooth_iterations: int = 1,
    holes: Sequence[Tuple[float, float]] = (),
    protect_segments: bool = False,
    flatten_rtol: float = 0.02,
    backend: Optional[str] = None,
) -> AdaptLoopResult:
    """Drive solve -> recover -> limit -> adapt until the error flattens.

    Each cycle: solve the model problem on the current mesh, record
    ``(dof, L2 error)``, build the Hessian metric for target
    interpolation error ``eps`` with spacing clamped to
    ``[h_min, h_max]``, limit its gradation over the mesh edge graph
    with slope ``grading``, and adapt the mesh to the limited metric.
    The loop stops early once the relative error improvement of a cycle
    drops below ``flatten_rtol`` (the error-vs-DOF curve has flattened:
    the mesh is resolution-limited by ``eps``, not by adaptation).

    ``backend`` (``None`` = in-process) dispatches the adapt step
    through the runtime executor — useful to co-schedule many loops, and
    exercised by the backend-parity tests.
    """
    if cycles < 1:
        raise ValueError("need at least one cycle")
    problem = problem or ShearLayerProblem()
    history: List[AdaptCycle] = []
    metric: Optional[MetricField] = None
    converged = False

    u = solve_on_mesh(mesh, problem)
    err = l2_error(mesh, u, problem)
    history.append(AdaptCycle(cycle=0, dof=mesh.n_points, error=err,
                              conformity=math.nan))

    for cycle in range(1, cycles + 1):
        metric = MetricField.from_hessian(
            mesh, u, eps=eps, h_min=h_min, h_max=h_max)
        metric = metric.limit_gradation(_mesh_edges(mesh), grading=grading)
        mesh, report = _adapt_step(
            mesh, metric, holes=holes, max_passes=max_passes,
            smooth_iterations=smooth_iterations,
            protect_segments=protect_segments, backend=backend,
        )
        u = solve_on_mesh(mesh, problem)
        prev = err
        err = l2_error(mesh, u, problem)
        history.append(AdaptCycle(
            cycle=cycle, dof=mesh.n_points, error=err,
            conformity=report.conformity_after, report=report,
        ))
        if prev > 0 and (prev - err) < flatten_rtol * prev:
            converged = True
            break

    return AdaptLoopResult(mesh=mesh, solution=u, metric=metric,
                           history=history, converged=converged)
