"""Iterative solvers with residual histories (paper Fig. 16).

Fig. 16 plots the residual of the conservation-of-mass equation against
solver iterations for the anisotropic vs. isotropic meshes of the same
geometry, stopping at 1e-12.  The comparison we reproduce needs an
iterative method whose per-iteration cost scales with mesh size and whose
iteration count reflects the system: Jacobi-preconditioned conjugate
gradients for the SPD diffusion systems, plus plain damped Jacobi and a
BiCGSTAB wrapper for non-symmetric convection systems.  Every solver
records the full relative-residual history.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

__all__ = ["SolveResult", "jacobi", "pcg", "bicgstab"]


@dataclass
class SolveResult:
    x: np.ndarray
    residuals: List[float]
    converged: bool
    iterations: int

    @property
    def final_residual(self) -> float:
        return self.residuals[-1] if self.residuals else np.inf


def _rel(r: np.ndarray, b_norm: float) -> float:
    return float(np.linalg.norm(r) / b_norm)


def jacobi(A: sp.spmatrix, b: np.ndarray, *, tol: float = 1e-12,
           max_iter: int = 100_000, omega: float = 0.8,
           x0: Optional[np.ndarray] = None) -> SolveResult:
    """Damped Jacobi iteration with residual history."""
    A = A.tocsr()
    b = np.asarray(b, dtype=np.float64)
    d = A.diagonal()
    if np.any(d == 0.0):
        raise ValueError("zero diagonal entry: Jacobi undefined")
    x = np.zeros_like(b) if x0 is None else np.asarray(x0, dtype=np.float64)
    b_norm = float(np.linalg.norm(b)) or 1.0
    hist: List[float] = []
    for it in range(1, max_iter + 1):
        r = b - A @ x
        rel = _rel(r, b_norm)
        hist.append(rel)
        if rel <= tol:
            return SolveResult(x, hist, True, it - 1)
        x = x + omega * (r / d)
    return SolveResult(x, hist, False, max_iter)


def pcg(A: sp.spmatrix, b: np.ndarray, *, tol: float = 1e-12,
        max_iter: int = 100_000, x0: Optional[np.ndarray] = None
        ) -> SolveResult:
    """Jacobi-preconditioned conjugate gradients with residual history."""
    A = A.tocsr()
    b = np.asarray(b, dtype=np.float64)
    d = A.diagonal()
    if np.any(d <= 0.0):
        raise ValueError("non-positive diagonal: not SPD-preconditionable")
    minv = 1.0 / d
    x = np.zeros_like(b) if x0 is None else np.asarray(x0, dtype=np.float64)
    b_norm = float(np.linalg.norm(b)) or 1.0
    r = b - A @ x
    z = minv * r
    p = z.copy()
    rz = float(r @ z)
    hist: List[float] = [_rel(r, b_norm)]
    if hist[0] <= tol:
        return SolveResult(x, hist, True, 0)
    for it in range(1, max_iter + 1):
        Ap = A @ p
        denom = float(p @ Ap)
        if denom <= 0.0:
            return SolveResult(x, hist, False, it)
        alpha = rz / denom
        x = x + alpha * p
        r = r - alpha * Ap
        rel = _rel(r, b_norm)
        hist.append(rel)
        if rel <= tol:
            return SolveResult(x, hist, True, it)
        z = minv * r
        rz_new = float(r @ z)
        p = z + (rz_new / rz) * p
        rz = rz_new
    return SolveResult(x, hist, False, max_iter)


def bicgstab(A: sp.spmatrix, b: np.ndarray, *, tol: float = 1e-12,
             max_iter: int = 100_000) -> SolveResult:
    """scipy BiCGSTAB wrapped to capture the residual history."""
    A = A.tocsr()
    b = np.asarray(b, dtype=np.float64)
    b_norm = float(np.linalg.norm(b)) or 1.0
    hist: List[float] = []

    def cb(xk: np.ndarray) -> None:
        hist.append(_rel(b - A @ xk, b_norm))

    d = A.diagonal()
    M = sp.diags(np.where(d != 0, 1.0 / d, 1.0)).tocsr()
    x, info = spla.bicgstab(A, b, rtol=tol, atol=0.0, maxiter=max_iter,
                            M=M, callback=cb)
    converged = info == 0
    if not hist:
        hist = [_rel(b - A @ x, b_norm)]
    return SolveResult(x, hist, converged, len(hist))
