"""Flow-solver substrate: P1 FEM, potential flow, iterative convergence."""

from .adapt import (
    AdaptCycle,
    AdaptLoopResult,
    ShearLayerProblem,
    adapt_loop,
    l2_error,
    solve_on_mesh,
)
from .blmodel import (
    BLModelResult,
    exact_solution,
    isotropic_mesh,
    layered_mesh,
    solve_bl_model,
)
from .convergence import SolveResult, bicgstab, jacobi, pcg
from .fem import (
    apply_dirichlet,
    assemble_convection,
    assemble_mass,
    assemble_stiffness,
    boundary_nodes,
    gradients,
)
from .flow import FlowResult, solve_potential_flow

__all__ = [
    "AdaptCycle",
    "AdaptLoopResult",
    "BLModelResult",
    "ShearLayerProblem",
    "adapt_loop",
    "l2_error",
    "solve_on_mesh",
    "FlowResult",
    "SolveResult",
    "apply_dirichlet",
    "assemble_convection",
    "assemble_mass",
    "assemble_stiffness",
    "bicgstab",
    "boundary_nodes",
    "gradients",
    "exact_solution",
    "isotropic_mesh",
    "jacobi",
    "layered_mesh",
    "pcg",
    "solve_bl_model",
    "solve_potential_flow",
]
