"""Potential-flow solver with Kutta-condition circulation (Figs. 14-15).

FUN3D's RANS solution is replaced by the classical incompressible
potential-flow model solved with the P1 FEM kernel: the streamfunction
``psi`` satisfies Laplace's equation with

* far-field Dirichlet data ``psi_inf = U (y cos(alpha) - x sin(alpha))``,
* a constant (unknown) value on each body loop.

Lift enters through circulation: for each body we solve an auxiliary
problem (``psi = 1`` on that body, 0 elsewhere) and choose the body
constants so the flow leaves every sharp trailing edge smoothly (the
Kutta condition, imposed by equalising the tangential speed on the two
faces meeting at the trailing edge).  Post-processing gives velocity
(per element, from the gradient of psi), pressure coefficient
``Cp = 1 - |V|^2/U^2`` and a compressibility-scaled local Mach number —
the fields of paper Figs. 14-15.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..delaunay.mesh import TriMesh
from .fem import apply_dirichlet, assemble_stiffness, boundary_nodes, gradients

__all__ = ["FlowResult", "solve_potential_flow"]


@dataclass
class FlowResult:
    psi: np.ndarray
    velocity: np.ndarray          # (n_el, 2) per-element
    cp: np.ndarray                # (n_el,)
    mach: np.ndarray              # (n_el,)
    circulations: np.ndarray      # per-body streamfunction constants
    u_inf: float
    alpha_deg: float
    mesh: Optional[TriMesh] = None
    body_loops: Tuple[np.ndarray, ...] = ()

    def lift_coefficient(self, chord: float = 1.0) -> float:
        """Cl from surface-pressure integration:  Cl = -(1/c) ∮ Cp n_y ds.

        ``n`` is the outward normal of each (CCW) body loop; the element
        adjacent to each surface panel supplies its Cp.
        """
        if self.mesh is None or not self.body_loops:
            raise ValueError("FlowResult lacks mesh/body context")
        cents = self.mesh.centroids()
        force_y = 0.0
        for ring in self.body_loops:
            ring = np.asarray(ring)
            m = len(ring)
            for i in range(m):
                a = ring[i]
                b = ring[(i + 1) % m]
                ex, ey = b[0] - a[0], b[1] - a[1]
                ds = math.hypot(ex, ey)
                if ds == 0:
                    continue
                # CCW body loop: outward normal (into the fluid) is the
                # left perpendicular... the fluid is OUTSIDE the loop, and
                # for a CCW polygon the outward direction is the right
                # perpendicular of the edge tangent.
                nx, ny = ey / ds, -ex / ds
                mid = (0.5 * (a[0] + b[0]) + 0.05 * ds * nx,
                       0.5 * (a[1] + b[1]) + 0.05 * ds * ny)
                e = int(np.argmin((cents[:, 0] - mid[0]) ** 2
                                  + (cents[:, 1] - mid[1]) ** 2))
                # Pressure pushes on the surface along -n (fluid -> body).
                force_y += -self.cp[e] * ny * ds
        return force_y / chord

    def stagnation_elements(self, frac: float = 0.02) -> np.ndarray:
        """Element ids whose speed is below ``frac`` of U∞."""
        speed = np.linalg.norm(self.velocity, axis=1)
        return np.flatnonzero(speed < frac * self.u_inf)


def _classify_boundary(mesh: TriMesh, body_loops: Sequence[np.ndarray]
                       ) -> Tuple[List[np.ndarray], np.ndarray]:
    """Split boundary nodes into per-body sets and the far-field set.

    ``body_loops`` are the coordinate rings of the body surfaces; nodes
    are matched by coordinates (the meshes were built from those rings,
    so matches are exact).
    """
    bnodes = boundary_nodes(mesh)
    coords = mesh.points[bnodes]
    body_sets: List[np.ndarray] = []
    claimed = np.zeros(len(bnodes), dtype=bool)
    for ring in body_loops:
        ring_set = {(float(x), float(y)) for x, y in ring}
        mask = np.array(
            [(float(x), float(y)) in ring_set for x, y in coords]
        )
        body_sets.append(bnodes[mask])
        claimed |= mask
    farfield = bnodes[~claimed]
    return body_sets, farfield


def _trailing_edge_probe(mesh: TriMesh, ring: np.ndarray
                         ) -> Tuple[int, int]:
    """Element ids just above and below a body's trailing edge."""
    te_idx = int(np.argmax(ring[:, 0]))
    te = ring[te_idx]
    cents = mesh.centroids()
    d = np.hypot(cents[:, 0] - te[0], cents[:, 1] - te[1])
    near = np.argsort(d)[:24]
    above = [e for e in near if cents[e, 1] > te[1]]
    below = [e for e in near if cents[e, 1] <= te[1]]
    if not above or not below:
        return int(near[0]), int(near[min(1, len(near) - 1)])
    return int(above[0]), int(below[0])


def solve_potential_flow(
    mesh: TriMesh,
    body_loops: Sequence[np.ndarray],
    *,
    u_inf: float = 1.0,
    alpha_deg: float = 0.0,
    mach_inf: float = 0.0,
    kutta: bool = True,
) -> FlowResult:
    """Solve potential flow around the bodies in ``mesh``.

    ``mesh`` is the fluid-region mesh (bodies are holes);
    ``body_loops`` their surface coordinate rings.
    """
    if u_inf <= 0:
        raise ValueError("u_inf must be positive")
    alpha = math.radians(alpha_deg)
    n = mesh.n_points
    K = assemble_stiffness(mesh)
    body_sets, farfield = _classify_boundary(mesh, body_loops)
    if len(farfield) == 0:
        raise ValueError("no far-field boundary found")
    for i, s in enumerate(body_sets):
        if len(s) == 0:
            raise ValueError(f"body loop {i} not found on the mesh boundary")

    p = mesh.points
    psi_far = u_inf * (p[:, 1] * math.cos(alpha) - p[:, 0] * math.sin(alpha))

    def solve_with(body_vals: Sequence[float],
                   far_vals: np.ndarray) -> np.ndarray:
        nodes = list(farfield)
        vals = list(far_vals[farfield])
        for s, v in zip(body_sets, body_vals):
            nodes.extend(s)
            vals.extend([v] * len(s))
        A, b = apply_dirichlet(K, np.zeros(n), nodes, vals)
        return spla.spsolve(A.tocsc(), b)

    # Base solution: psi = psi_inf on the far field, 0 on all bodies.
    psi0 = solve_with([0.0] * len(body_sets), psi_far)
    # Influence solutions: psi = 1 on body j, 0 elsewhere, 0 at infinity.
    influences = []
    if kutta:
        zero_far = np.zeros(n)
        for j in range(len(body_sets)):
            vals = [1.0 if i == j else 0.0 for i in range(len(body_sets))]
            influences.append(solve_with(vals, zero_far))

    g, _areas = gradients(mesh)

    def element_velocity(psi: np.ndarray) -> np.ndarray:
        grad = np.einsum("tia,ti->ta", g, psi[mesh.triangles])
        # v = (d psi / dy, -d psi / dx)
        return np.column_stack([grad[:, 1], -grad[:, 0]])

    if kutta and influences:
        # Kutta condition per body: equal speed on the upper/lower elements
        # at the trailing edge -> linear system in the body constants.
        v0 = element_velocity(psi0)
        vi = [element_velocity(q) for q in influences]
        m = len(body_sets)
        Amat = np.zeros((m, m))
        rhs = np.zeros(m)
        for bi, ring in enumerate(body_loops):
            e_up, e_dn = _trailing_edge_probe(mesh, np.asarray(ring))
            # Tangential direction at the TE ~ x-direction of the local
            # flow; equalise the full velocity magnitude linearised:
            # |v_up|^2 - |v_dn|^2 = 0 with v = v0 + sum c_j v_j.
            # Linearise around v0 (one Newton step is exact enough for the
            # nearly-linear dependence).
            for bj in range(m):
                Amat[bi, bj] = 2.0 * (
                    v0[e_up] @ vi[bj][e_up] - v0[e_dn] @ vi[bj][e_dn]
                )
            rhs[bi] = -(v0[e_up] @ v0[e_up] - v0[e_dn] @ v0[e_dn])
        try:
            consts = np.linalg.solve(Amat, rhs)
        except np.linalg.LinAlgError:
            consts = np.zeros(m)
        psi = psi0 + sum(c * q for c, q in zip(consts, influences))
        circulations = consts  # psi jump per body ~ circulation measure
    else:
        psi = psi0
        circulations = np.zeros(len(body_sets))

    vel = element_velocity(psi)
    speed2 = (vel**2).sum(axis=1)
    cp = 1.0 - speed2 / (u_inf * u_inf)
    mach = mach_inf * np.sqrt(speed2) / u_inf
    return FlowResult(
        psi=psi,
        velocity=vel,
        cp=cp,
        mach=mach,
        circulations=np.asarray(circulations, dtype=np.float64),
        u_inf=u_inf,
        alpha_deg=alpha_deg,
        mesh=mesh,
        body_loops=tuple(np.asarray(r) for r in body_loops),
    )
