"""P1 finite-element assembly on triangle meshes (the flow-solver substrate).

The paper assesses its meshes with FUN3D (Figs. 14-16).  As a stand-in we
implement a compact P1 (linear-triangle) finite-element kernel sufficient
for the model problems the experiments need:

* stiffness matrices for (an)isotropic diffusion,
* lumped/consistent mass matrices,
* Galerkin convection with optional streamline (SUPG-like) stabilisation,
* Dirichlet boundary condition application,

all assembled vectorised over the element arrays into scipy CSR matrices.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple, Union

import numpy as np
import scipy.sparse as sp

from ..delaunay.mesh import TriMesh

__all__ = [
    "gradients",
    "assemble_stiffness",
    "assemble_mass",
    "assemble_convection",
    "apply_dirichlet",
    "boundary_nodes",
]


def gradients(mesh: TriMesh) -> Tuple[np.ndarray, np.ndarray]:
    """P1 basis gradients per element.

    Returns ``(grads, areas)`` with ``grads[t, i, :]`` the constant
    gradient of the hat function of local vertex ``i`` on triangle ``t``
    and ``areas`` the positive element areas.
    """
    p = mesh.points
    t = mesh.triangles
    a, b, c = p[t[:, 0]], p[t[:, 1]], p[t[:, 2]]
    area2 = (
        (b[:, 0] - a[:, 0]) * (c[:, 1] - a[:, 1])
        - (b[:, 1] - a[:, 1]) * (c[:, 0] - a[:, 0])
    )
    # Degeneracy is decided by the exact predicate (a float determinant
    # near the rounding threshold can read 0.0 for a valid sliver); the
    # exact_eq guard additionally rejects underflowed float areas that
    # would poison the division below even when the exact sign is nonzero.
    from ..geometry.predicates import exact_eq, orient2d_batch

    if np.any(orient2d_batch(a, b, c) == 0) or np.any(exact_eq(area2, 0.0)):
        raise ValueError("degenerate element in FEM mesh")
    # grad phi_i = perp(edge opposite i) / (2A), with orientation so the
    # gradient points from the opposite edge toward vertex i.
    g = np.empty((len(t), 3, 2))
    for i, (j, k) in enumerate(((1, 2), (2, 0), (0, 1))):
        e = p[t[:, k]] - p[t[:, j]]
        g[:, i, 0] = -e[:, 1] / area2
        g[:, i, 1] = e[:, 0] / area2
    return g, np.abs(area2) / 2.0


def _accumulate(mesh: TriMesh, ke: np.ndarray) -> sp.csr_matrix:
    """Scatter per-element 3x3 blocks into a global CSR matrix."""
    t = mesh.triangles
    rows = np.repeat(t, 3, axis=1).ravel()
    cols = np.tile(t, (1, 3)).ravel()
    return sp.csr_matrix(
        (ke.ravel(), (rows, cols)),
        shape=(mesh.n_points, mesh.n_points),
    )


def assemble_stiffness(
    mesh: TriMesh,
    diffusivity: Union[float, np.ndarray, Callable[[float, float], np.ndarray]] = 1.0,
) -> sp.csr_matrix:
    """Assemble the diffusion stiffness matrix.

    ``diffusivity`` may be a scalar, a constant 2x2 SPD tensor, or a
    callable ``(x, y) -> 2x2 tensor`` evaluated at element centroids —
    anisotropic diffusion is the model problem whose boundary-layer
    solutions motivate anisotropic meshes.
    """
    g, areas = gradients(mesh)
    n_el = mesh.n_triangles
    if callable(diffusivity):
        cents = mesh.centroids()
        D = np.stack([np.asarray(diffusivity(x, y), dtype=np.float64)
                      for x, y in cents])
    else:
        D0 = np.asarray(diffusivity, dtype=np.float64)
        if D0.ndim == 0:
            D0 = D0 * np.eye(2)
        D = np.broadcast_to(D0, (n_el, 2, 2))
    # ke[t, i, j] = area * grad_i . D . grad_j
    Dg = np.einsum("tab,tjb->tja", D, g)
    ke = np.einsum("tia,tja->tij", g, Dg) * areas[:, None, None]
    return _accumulate(mesh, ke)


def assemble_mass(mesh: TriMesh, *, lumped: bool = False) -> sp.csr_matrix:
    """Consistent (or row-lumped) P1 mass matrix."""
    _, areas = gradients(mesh)
    if lumped:
        diag = np.zeros(mesh.n_points)
        np.add.at(diag, mesh.triangles.ravel(),
                  np.repeat(areas / 3.0, 3))
        return sp.diags(diag).tocsr()
    base = (np.ones((3, 3)) + np.eye(3)) / 12.0
    ke = base[None, :, :] * areas[:, None, None]
    return _accumulate(mesh, ke)


def assemble_convection(
    mesh: TriMesh,
    velocity: Union[Tuple[float, float], Callable[[float, float], Tuple[float, float]]],
    *,
    supg: bool = True,
) -> sp.csr_matrix:
    """Assemble the convection operator  C[i,j] = ∫ phi_i (v . grad phi_j).

    With ``supg`` a streamline-diffusion term ``tau (v.grad phi_i)(v.grad
    phi_j)`` is added per element (tau = h_stream / (2|v|)), which keeps
    the discrete operator stable on convection-dominated boundary-layer
    problems — the regime the paper's meshes target.
    """
    g, areas = gradients(mesh)
    cents = mesh.centroids()
    if callable(velocity):
        V = np.asarray([velocity(x, y) for x, y in cents], dtype=np.float64)
    else:
        V = np.broadcast_to(np.asarray(velocity, dtype=np.float64),
                            (mesh.n_triangles, 2))
    vdotg = np.einsum("ta,tja->tj", V, g)          # (v . grad phi_j)
    # Galerkin term: ∫ phi_i (v.grad phi_j) = (A/3) * vdotg_j for each i.
    ke = np.repeat(vdotg[:, None, :], 3, axis=1) * (areas / 3.0)[:, None, None]
    if supg:
        speed = np.linalg.norm(V, axis=1)
        # streamwise element length ~ 2A / height... use sqrt(area) proxy
        # projected on the flow direction via the longest edge.
        ls = mesh.edge_lengths()
        h = ls.max(axis=1)
        with np.errstate(divide="ignore", invalid="ignore"):
            tau = np.where(speed > 0, h / (2.0 * speed), 0.0)
        ke += (
            np.einsum("ti,tj->tij", vdotg, vdotg)
            * (tau * areas)[:, None, None]
        )
    return _accumulate(mesh, ke)


def boundary_nodes(mesh: TriMesh,
                   predicate: Optional[Callable[[float, float], bool]] = None
                   ) -> np.ndarray:
    """Vertex indices on the mesh boundary (optionally filtered)."""
    be = mesh.boundary_edges()
    nodes = np.unique(be.ravel())
    if predicate is not None:
        keep = [n for n in nodes
                if predicate(mesh.points[n, 0], mesh.points[n, 1])]
        nodes = np.asarray(keep, dtype=nodes.dtype)
    return nodes


def apply_dirichlet(
    A: sp.csr_matrix,
    b: np.ndarray,
    nodes: Sequence[int],
    values: Union[float, Sequence[float]],
) -> Tuple[sp.csr_matrix, np.ndarray]:
    """Impose ``u[nodes] = values`` by row/column elimination (symmetric).

    Returns modified copies ``(A', b')``; the eliminated columns are moved
    to the right-hand side so symmetry (hence CG applicability) survives.
    """
    nodes = np.asarray(nodes, dtype=np.int64)
    vals = np.broadcast_to(np.asarray(values, dtype=np.float64), nodes.shape)
    A = A.tocsc(copy=True)
    b = np.asarray(b, dtype=np.float64).copy()

    u_bc = np.zeros(A.shape[0])
    u_bc[nodes] = vals
    b -= A @ u_bc

    mask = np.zeros(A.shape[0], dtype=bool)
    mask[nodes] = True
    A = A.tolil()
    A[nodes, :] = 0.0
    A[:, nodes] = 0.0
    for n, v in zip(nodes, vals):
        A[n, n] = 1.0
    b[nodes] = vals
    return A.tocsr(), b
