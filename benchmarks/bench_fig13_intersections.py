"""E8 / Fig. 13: resolved self- and multi-element intersections.

Paper Fig. 13 highlights: (b) self-intersection at the slat cove +
trailing-edge fan, (c) self-intersection at a concave corner, (d)
multi-element intersection between neighbouring boundary layers, (e)
blunt-trailing-edge fans.  We run the three-element configuration and
verify (1) the resolution machinery fires, (2) no crossing segments
survive, and (3) the hierarchical AABB+ADT pruning beats brute force.
"""

import time

import numpy as np
import pytest

from repro.core.bl_pipeline import BoundaryLayerConfig, generate_boundary_layer
from repro.core.intersections import ray_segment
from repro.geometry.airfoils import three_element_airfoil
from repro.geometry.primitives import segments_intersect

from conftest import print_table


@pytest.fixture(scope="module")
def highlift_bl():
    pslg = three_element_airfoil(n_points=61)
    cfg = BoundaryLayerConfig(first_spacing=8e-4, growth_ratio=1.3,
                              max_layers=25)
    return generate_boundary_layer(pslg, cfg)


def test_fig13_truncations_fired(benchmark, highlift_bl):
    res = benchmark.pedantic(lambda: highlift_bl, rounds=1, iterations=1)
    s = res.stats
    print_table(
        "Fig. 13 — intersection resolution events",
        ["mechanism", "count"],
        [
            ["self-intersection truncations (coves, b/c)",
             int(s["n_self_truncations"])],
            ["multi-element truncations (gaps, d)",
             int(s["n_multi_truncations"])],
            ["border untangle shrinks", int(s["n_border_shrinks"])],
        ],
    )
    assert s["n_self_truncations"] > 0      # the coves
    assert s["n_multi_truncations"] > 0     # slat/main and main/flap gaps


def test_fig13_no_crossings_survive(benchmark, highlift_bl):
    """After resolution, no two BL ray segments properly cross."""

    def check():
        crossings = 0
        all_rays = [(el, r) for el, rays in
                    enumerate(highlift_bl.element_rays) for r in rays]
        segs = [
            (el, ray_segment(r, r.heights[-1] if r.heights else 0.0))
            for el, r in all_rays
        ]
        live = [(el, s) for el, s in segs if s[0] != s[1]]
        for i in range(len(live)):
            for j in range(i + 1, len(live)):
                (el1, (a1, b1)), (el2, (a2, b2)) = live[i], live[j]
                if a1 == a2:
                    continue  # shared fan origin
                if segments_intersect(a1, b1, a2, b2, proper_only=True):
                    crossings += 1
        return crossings

    crossings = benchmark.pedantic(check, rounds=1, iterations=1)
    print(f"\nFig. 13 — surviving ray crossings after resolution: "
          f"{crossings}")
    assert crossings == 0


def test_fig13_hierarchical_pruning_beats_bruteforce(benchmark):
    """The AABB + ADT hierarchy (Section II.B) vs all-pairs checks."""
    from repro.core.intersections import resolve_self_intersections
    from repro.core.rays import Ray

    rng = np.random.default_rng(0)
    n = 800
    rays = []
    for i in range(n):
        x = i / n
        # Wavy surface with overlapping normals in the troughs.
        rays.append(Ray(origin=(x, 0.05 * np.sin(20 * x)),
                        direction=(0.0, 1.0)))

    def hierarchical():
        rs = [Ray(origin=r.origin, direction=r.direction) for r in rays]
        resolve_self_intersections(rs, default_height=0.5)

    def brute():
        rs = [Ray(origin=r.origin, direction=r.direction) for r in rays]
        segs = [ray_segment(r, 0.5) for r in rs]
        hits = 0
        for i in range(len(segs)):
            for j in range(i + 1, len(segs)):
                if segments_intersect(*segs[i], *segs[j], proper_only=True):
                    hits += 1
        return hits

    t0 = time.perf_counter()
    brute()
    t_brute = time.perf_counter() - t0
    benchmark.pedantic(hierarchical, rounds=1, iterations=1)
    t0 = time.perf_counter()
    hierarchical()
    t_hier = time.perf_counter() - t0
    print_table(
        "Fig. 13 / Section II.B — pruning hierarchy vs brute force "
        f"({n} rays)",
        ["method", "time"],
        [["AABB + ADT + exact", f"{t_hier:.3f}s"],
         ["all-pairs exact", f"{t_brute:.3f}s"],
         ["speedup", f"{t_brute / max(t_hier, 1e-9):.1f}x"]],
    )
    assert t_hier < t_brute
