"""E2 / Fig. 12: parallel efficiency of the strong-scaling run.

Paper: ~98% sequential efficiency, ~80% at 128 ranks, ~70% at 256.
"""

import pytest

from repro.runtime.simulator import NetworkModel, SimConfig, strong_scaling

from conftest import print_table

RANKS = [1, 2, 4, 8, 16, 32, 64, 128, 256]


def test_fig12_efficiency_series(benchmark, measured_tasks):
    total = sum(t.cost for t in measured_tasks)
    cfg = SimConfig(
        network=NetworkModel(latency=2e-6, bandwidth=7e9),
        serial_setup=0.002 * total,
        per_task_overhead=1e-4,
    )

    def run():
        return strong_scaling(measured_tasks, RANKS, cfg,
                              t_sequential=total / 1.02)

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[p, f"{table[p]['efficiency']:.0%}"] for p in RANKS]
    print_table(
        "Fig. 12 — efficiency (paper: ~98% @1, ~80% @128, ~70% @256)",
        ["ranks", "efficiency"], rows,
    )
    e = {p: table[p]["efficiency"] for p in RANKS}
    assert 0.93 <= e[1] <= 1.0          # sequential ~98%
    assert 0.55 <= e[128] <= 0.95       # paper ~80%
    assert 0.45 <= e[256] <= 0.85       # paper ~70%
    # Efficiency decays with rank count (weakly monotone at the top end).
    assert e[256] <= e[128] <= e[32] <= e[4] + 1e-9


def test_fig12_network_sensitivity(benchmark, measured_tasks):
    """Efficiency at 256 ranks degrades on a slower network — the RMA /
    Infiniband dependence the paper calls out."""
    total = sum(t.cost for t in measured_tasks)

    def run():
        out = {}
        for label, net in (
            ("infiniband", NetworkModel(2e-6, 7e9)),
            ("gigabit", NetworkModel(5e-5, 1.2e8)),
        ):
            cfg = SimConfig(network=net, serial_setup=0.002 * total,
                            per_task_overhead=1e-4)
            out[label] = strong_scaling(measured_tasks, [256], cfg,
                                        t_sequential=total / 1.02)
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    ib = out["infiniband"][256]["efficiency"]
    ge = out["gigabit"][256]["efficiency"]
    print_table("Fig. 12 (extension) — network sensitivity @256 ranks",
                ["network", "efficiency"],
                [["infiniband", f"{ib:.0%}"], ["gigabit", f"{ge:.0%}"]])
    assert ge <= ib
