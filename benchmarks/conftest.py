"""Shared fixtures and helpers for the experiment benchmarks.

Every benchmark regenerates one table/figure of the paper's evaluation
(see DESIGN.md's experiment index and EXPERIMENTS.md for paper-vs-measured
numbers).  Expensive artefacts (meshes, measured task costs) are built
once per session and shared.
"""

from __future__ import annotations

import time
from typing import Dict, List

import numpy as np
import pytest

from repro.core.bl_pipeline import BoundaryLayerConfig
from repro.core.pipeline import MeshConfig, generate_mesh
from repro.geometry.airfoils import naca0012, three_element_airfoil
from repro.geometry.pslg import PSLG
from repro.runtime.simulator import SimTask


def print_table(title: str, header: List[str], rows: List[List]) -> None:
    print(f"\n=== {title} ===")
    widths = [max(len(str(h)), max((len(str(r[i])) for r in rows), default=0))
              for i, h in enumerate(header)]
    print("  " + "  ".join(str(h).rjust(w) for h, w in zip(header, widths)))
    for r in rows:
        print("  " + "  ".join(str(v).rjust(w) for v, w in zip(r, widths)))


@pytest.fixture(scope="session")
def naca_mesh_result():
    """Medium push-button NACA 0012 mesh shared across benchmarks."""
    pslg = PSLG.from_loops([naca0012(81)])
    config = MeshConfig(
        bl=BoundaryLayerConfig(first_spacing=1e-3, growth_ratio=1.3,
                               max_layers=30),
        farfield_chords=30.0,
        target_subdomains=32,
    )
    return pslg, config, generate_mesh(pslg, config)


@pytest.fixture(scope="session")
def highlift_mesh_result():
    """Three-element high-lift mesh (the 30p30n stand-in)."""
    pslg = three_element_airfoil(n_points=61)
    config = MeshConfig(
        bl=BoundaryLayerConfig(first_spacing=8e-4, growth_ratio=1.3,
                               max_layers=30),
        farfield_chords=20.0,
        target_subdomains=24,
    )
    return pslg, config, generate_mesh(pslg, config)


@pytest.fixture(scope="session")
def measured_tasks(naca_mesh_result) -> List[SimTask]:
    """Per-subdomain costs measured from the live kernel, replicated to
    cluster scale (~1e4 tasks) for the strong-scaling simulations."""
    from repro.core.decouple import refine_subdomain
    from repro.sizing.functions import GradedDistanceSizing

    pslg, config, result = naca_mesh_result
    sizing = GradedDistanceSizing(
        np.vstack(result.bl.outer_borders),
        h0=result.stats["h0"], grading=config.grading,
        h_max=config.h_max_chords * result.stats["chord"],
    )
    base: List[SimTask] = []
    for sub in result.subdomains:
        t0 = time.perf_counter()
        refine_subdomain(sub, sizing)
        base.append(SimTask(cost=time.perf_counter() - t0,
                            size_bytes=16.0 * len(sub.ring)))
    bl_cost = result.timings["boundary_layer"]
    for _ in range(max(8, len(base) // 4)):
        base.append(SimTask(cost=bl_cost / max(8, len(base) // 4),
                            size_bytes=64e3))
    rng = np.random.default_rng(7)
    factor = max(1, 12288 // len(base))
    return [
        SimTask(cost=float(t.cost * rng.uniform(0.8, 1.25)),
                size_bytes=t.size_bytes)
        for _ in range(factor) for t in base
    ]
