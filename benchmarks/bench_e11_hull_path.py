"""E11 / Fig. 7 + Section II.D: monotone-chain hull and dividing paths.

Verifies the machinery at scale: the monotone chain runs in linear time
on pre-sorted input (the property the maintained sorted arrays buy), and
dividing-path edges are true Delaunay edges.
"""

import time

import numpy as np
import pytest

from repro.core.projection import dividing_path
from repro.core.subdomain import Subdomain
from repro.delaunay.hull import lower_hull_sorted
from repro.delaunay.kernel import delaunay_mesh

from conftest import print_table


def test_e11_monotone_chain_linear_time(benchmark):
    rng = np.random.default_rng(0)
    sizes = [20_000, 40_000, 80_000, 160_000]
    times = {}
    for n in sizes:
        pts = rng.uniform(0, 1, size=(n, 2))
        order = np.lexsort((pts[:, 1], pts[:, 0]))
        t0 = time.perf_counter()
        lower_hull_sorted(pts, order)
        times[n] = time.perf_counter() - t0
    pts = rng.uniform(0, 1, size=(sizes[-1], 2))
    order = np.lexsort((pts[:, 1], pts[:, 0]))
    benchmark.pedantic(lambda: lower_hull_sorted(pts, order),
                       rounds=3, iterations=1)
    rows = [[n, f"{times[n] * 1e3:.1f}ms",
             f"{times[n] / n * 1e9:.0f}ns/pt"] for n in sizes]
    print_table("Fig. 7 — monotone chain on pre-sorted input (linear time)",
                ["points", "time", "per point"], rows)
    # Per-point cost roughly flat: linear scaling (2x tolerance for noise).
    per_point = [times[n] / n for n in sizes]
    assert max(per_point) < 2.5 * min(per_point)


def test_e11_path_edges_are_delaunay_at_scale(benchmark):
    rng = np.random.default_rng(1)
    pts = rng.uniform(0, 1, size=(2000, 2))

    def run():
        sub = Subdomain.from_points(pts)
        axis = sub.cut_axis()
        med = sub.median_vertex(axis)
        return dividing_path(sub, axis, med)

    hull = benchmark.pedantic(run, rounds=1, iterations=1)
    glob = delaunay_mesh(pts)
    edges = {tuple(sorted(e)) for e in glob.edges().tolist()}
    bad = [
        (int(a), int(b)) for a, b in zip(hull, hull[1:])
        if tuple(sorted((int(a), int(b)))) not in edges
    ]
    print_table(
        "Section II.D — dividing path validity (2000 points)",
        ["metric", "value"],
        [["path vertices", len(hull)],
         ["path edges", len(hull) - 1],
         ["non-Delaunay path edges", len(bad)]],
    )
    assert bad == []


def test_e11_sorted_maintenance_beats_resort(benchmark):
    """Section III: maintaining sorted arrays vs re-sorting at each level.

    The partition filters sorted orders in linear time; re-sorting every
    child costs an extra log factor.  Measured over a full decomposition.
    """
    from repro.core.decompose import decompose

    rng = np.random.default_rng(2)
    pts = rng.uniform(0, 1, size=(30_000, 2))

    t0 = time.perf_counter()
    res = decompose(pts, leaf_size=512)
    t_maintained = time.perf_counter() - t0
    benchmark.pedantic(lambda: decompose(pts, leaf_size=512),
                       rounds=1, iterations=1)

    # Simulate the "resort every subdomain" cost: sorting each leaf's
    # points again, accumulated over the recursion levels.
    t_resort_extra = 0.0
    for leaf in res.leaves:
        for _ in range(leaf.level):
            t0 = time.perf_counter()
            np.lexsort((leaf.coords[:, 1], leaf.coords[:, 0]))
            t_resort_extra += time.perf_counter() - t0
    print_table(
        "Section III — maintained sorted arrays vs re-sorting",
        ["variant", "time"],
        [["decompose (maintained)", f"{t_maintained:.3f}s"],
         ["extra if re-sorting each level", f"+{t_resort_extra:.3f}s"]],
    )
    assert t_resort_extra > 0
