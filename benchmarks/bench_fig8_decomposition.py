"""E4 / Fig. 8: the boundary layer decomposed into 128 Delaunay subdomains.

Paper Fig. 8 shows the 30p30n boundary layer split into 128 independently
triangulable subdomains by the projection-based decomposition.  We verify
the decomposition of the real multi-element BL point cloud: leaf count,
balance, and the headline guarantee that the independently triangulated
leaves merge into the exact Delaunay triangulation.
"""

import numpy as np
import pytest

from repro.core.decompose import decompose, triangulate_leaves
from repro.delaunay.kernel import delaunay_mesh
from repro.delaunay.mesh import merge_meshes

from conftest import print_table


@pytest.fixture(scope="module")
def bl_cloud(highlift_mesh_result):
    _, _, result = highlift_mesh_result
    return np.unique(result.bl.points, axis=0)


def test_fig8_decompose_to_128(benchmark, bl_cloud):
    res = benchmark.pedantic(
        lambda: decompose(bl_cloud, leaf_size=max(8, len(bl_cloud) // 128),
                          max_level=10),
        rounds=1, iterations=1,
    )
    sizes = res.sizes()
    print_table(
        "Fig. 8 — BL point cloud decomposition (paper: 128 subdomains)",
        ["metric", "value"],
        [
            ["BL points", len(bl_cloud)],
            ["leaves", len(res.leaves)],
            ["splits", res.n_splits],
            ["min/median/max leaf", f"{min(sizes)}/{int(np.median(sizes))}/"
                                    f"{max(sizes)}"],
            ["balance (max/mean)", f"{res.balance():.2f}"],
            ["path edges", len(res.path_edges_global)],
        ],
    )
    assert 64 <= len(res.leaves) <= 256
    assert res.balance() < 3.0


def test_fig8_leaves_reassemble_global_delaunay(benchmark, bl_cloud):
    """Independent leaf triangulation == global DT on the anisotropic
    boundary-layer cloud (the hard case: aspect ratios in the hundreds)."""
    sub = bl_cloud[:4000] if len(bl_cloud) > 4000 else bl_cloud

    def run():
        res = decompose(sub, leaf_size=max(16, len(sub) // 64))
        return res, merge_meshes(triangulate_leaves(res))

    res, merged = benchmark.pedantic(run, rounds=1, iterations=1)
    glob = delaunay_mesh(sub)
    keyify = lambda mesh: {
        tuple(sorted(np.round(mesh.points[list(t)], 12).ravel()))
        for t in mesh.triangles.tolist()
    }
    a, b = keyify(merged), keyify(glob)
    print_table(
        "Fig. 8 — exactness of the parallel BL triangulation",
        ["metric", "value"],
        [
            ["points", len(sub)],
            ["leaves", len(res.leaves)],
            ["merged triangles", merged.n_triangles],
            ["global triangles", glob.n_triangles],
            ["missing / extra", f"{len(b - a)} / {len(a - b)}"],
        ],
    )
    assert a == b
    assert merged.is_conforming()
