"""Ablation benchmarks for the design choices DESIGN.md calls out.

* cut-axis policy: shortest-bbox-edge (paper) vs always-vertical cuts;
* partition rule: exact path-side vs the paper's branch-free coordinate
  split (Section III);
* work stealing on/off (Section II.F);
* largest-first vs FIFO queue ordering (Section IV);
* insertion order reuse: pre-sorted insertion vs shuffled (Section III,
  "we removed the sorting step from Triangle").
"""

import time

import numpy as np
import pytest

from repro.core.decompose import decompose, triangulate_leaves
from repro.delaunay.mesh import merge_meshes
from repro.runtime.simulator import NetworkModel, SimConfig, SimTask, simulate

from conftest import print_table


def lognormal_tasks(n=3000, seed=0):
    rng = np.random.default_rng(seed)
    return [SimTask(float(c), 4e4) for c in rng.lognormal(-2, 1.0, n)]


class TestCutAxisAblation:
    def test_shortest_edge_cut_balances_skinny_domains(self, benchmark):
        """On a strongly elongated cloud, always-vertical cuts produce
        long skinny leaves; the paper's shortest-edge rule does not."""
        rng = np.random.default_rng(3)
        pts = rng.uniform(0, 1, size=(4000, 2)) * np.array([100.0, 1.0])

        res_paper = benchmark.pedantic(
            lambda: decompose(pts, leaf_size=250), rounds=1, iterations=1)

        # Force horizontal cuts (the wrong axis for this cloud) by
        # monkey-patching the policy.
        from repro.core import subdomain as sd

        orig = sd.Subdomain.cut_axis
        sd.Subdomain.cut_axis = lambda self: "x"
        try:
            res_bad = decompose(pts, leaf_size=250)
        finally:
            sd.Subdomain.cut_axis = orig

        def skinniness(res):
            vals = []
            for leaf in res.leaves:
                box = leaf.bbox()
                vals.append(max(box.width, box.height)
                            / max(min(box.width, box.height), 1e-12))
            return float(np.median(vals))

        s_paper, s_bad = skinniness(res_paper), skinniness(res_bad)
        print_table(
            "Ablation — cut axis (paper: cut parallel to shortest bbox edge)",
            ["policy", "leaves", "median elongation"],
            [["shortest-edge (paper)", len(res_paper.leaves),
              f"{s_paper:.1f}"],
             ["always-horizontal", len(res_bad.leaves), f"{s_bad:.1f}"]],
        )
        assert s_paper < s_bad


class TestPartitionModeAblation:
    def test_path_mode_exact_coordinate_mode_fast(self, benchmark):
        from repro.delaunay.kernel import delaunay_mesh

        rng = np.random.default_rng(4)
        pts = rng.uniform(0, 1, size=(1500, 2))
        glob = delaunay_mesh(pts)
        keyify = lambda mesh: {
            tuple(sorted(np.round(mesh.points[list(t)], 12).ravel()))
            for t in mesh.triangles.tolist()
        }
        gset = keyify(glob)

        rows = []
        results = {}
        for mode in ("path", "coordinate"):
            t0 = time.perf_counter()
            res = decompose(pts, leaf_size=150, partition_mode=mode)
            t_dec = time.perf_counter() - t0
            merged = merge_meshes(triangulate_leaves(res))
            mset = keyify(merged)
            results[mode] = (res, merged, mset, t_dec)
            rows.append([mode, f"{t_dec * 1e3:.0f}ms",
                         len(gset - mset), len(mset - gset),
                         merged.is_conforming()])
        benchmark.pedantic(
            lambda: decompose(pts, leaf_size=150, partition_mode="path"),
            rounds=1, iterations=1)
        print_table(
            "Ablation — partition rule (Section III)",
            ["mode", "decompose", "missing", "extra", "conforming"], rows)
        # Exact mode: perfect Delaunay reassembly.
        assert results["path"][2] == gset
        # Paper's coordinate mode: still a valid conforming triangulation.
        assert results["coordinate"][1].is_conforming()


class TestLoadBalancingAblation:
    def test_stealing_beats_static(self, benchmark):
        tasks = lognormal_tasks()
        cfg_steal = SimConfig(network=NetworkModel(2e-6, 7e9))
        cfg_static = SimConfig(network=NetworkModel(2e-6, 7e9),
                               stealing=False)

        res_steal = benchmark.pedantic(
            lambda: simulate(tasks, 64, cfg_steal), rounds=1, iterations=1)
        res_static = simulate(tasks, 64, cfg_static)
        print_table(
            "Ablation — work stealing (Section II.F)",
            ["variant", "makespan", "steals"],
            [["stealing", f"{res_steal.makespan:.3f}s",
              res_steal.n_steal_successes],
             ["static", f"{res_static.makespan:.3f}s",
              res_static.n_steal_successes]],
        )
        assert res_steal.makespan <= res_static.makespan
        assert res_steal.n_steal_successes > 0

    def test_largest_first_helps_tail(self, benchmark):
        """Largest-first leaves small items for end-game balancing.

        FIFO order is emulated by shuffling costs so the largest tasks can
        land late; the end-of-run imbalance grows."""
        rng = np.random.default_rng(5)
        tasks = lognormal_tasks(seed=5)
        cfg = SimConfig(network=NetworkModel(2e-6, 7e9))
        res_lf = benchmark.pedantic(lambda: simulate(tasks, 64, cfg),
                                    rounds=1, iterations=1)
        # Emulate FIFO by hiding cost information from the scheduler:
        # uniform declared sizes, same true work.
        total = sum(t.cost for t in tasks)
        fifo_like = [SimTask(total / len(tasks), t.size_bytes)
                     for t in tasks]
        res_fifo = simulate(fifo_like, 64, cfg)
        print_table(
            "Ablation — queue ordering (largest-first vs size-blind)",
            ["variant", "makespan"],
            [["largest-first (paper)", f"{res_lf.makespan:.3f}s"],
             ["size-blind", f"{res_fifo.makespan:.3f}s"]],
        )
        # Largest-first with true costs is never worse than size-blind
        # scheduling of the same total work (modulo simulator noise).
        assert res_lf.makespan <= 1.2 * res_fifo.makespan


class TestInsertionOrderAblation:
    def test_sorted_insertion_walk_locality(self, benchmark):
        """Section III: reusing maintained sorted input keeps point-
        location walks short."""
        from repro.delaunay.dnc import triangulate_ordered

        rng = np.random.default_rng(6)
        pts = rng.uniform(0, 1, size=(6000, 2))

        t0 = time.perf_counter()
        triangulate_ordered(pts, "random")
        t_random = time.perf_counter() - t0

        t0 = time.perf_counter()
        triangulate_ordered(pts, "sorted")
        t_sorted = time.perf_counter() - t0

        benchmark.pedantic(lambda: triangulate_ordered(pts, "brio"),
                           rounds=1, iterations=1)
        t0 = time.perf_counter()
        triangulate_ordered(pts, "brio")
        t_brio = time.perf_counter() - t0
        print_table(
            "Ablation — insertion order (Section III sorted-input reuse)",
            ["order", "time"],
            [["random", f"{t_random:.2f}s"],
             ["sorted (paper)", f"{t_sorted:.2f}s"],
             ["brio", f"{t_brio:.2f}s"]],
        )
        # Locality-aware orders beat random shuffling.
        assert min(t_sorted, t_brio) < t_random


class TestDividingPathAblation:
    def test_delaunay_paths_preserve_alignment(self, benchmark):
        """Section II.D's justification: 'user-defined dividing paths may
        not have been present in the final triangulation and will disturb
        the alignment and orthogonality of the anisotropic elements.'

        We triangulate the same anisotropic BL point cloud (a) through the
        projection-based decomposition (paths are true Delaunay edges) and
        (b) as a CDT with arbitrary straight vertical cuts forced through
        the layers, then compare the surface-alignment of the stretched
        elements near the cuts.
        """
        import numpy as np

        from repro.analysis.metrics import alignment_to_surface
        from repro.core.decompose import decompose, triangulate_leaves
        from repro.delaunay.constrained import constrained_delaunay
        from repro.delaunay.kernel import delaunay_mesh
        from repro.delaunay.mesh import merge_meshes

        # A flat-plate boundary layer: strongly stretched layers.
        nx, heights = 80, [0.0, 2e-3, 5e-3, 1e-2, 2e-2, 4e-2]
        xs = np.linspace(0.0, 1.0, nx)
        cloud = np.array([(x, h) for x in xs for h in heights])
        surface = np.column_stack([xs, np.zeros(nx)])

        def ours():
            res = decompose(cloud, leaf_size=60)
            return merge_meshes(triangulate_leaves(res))

        mesh_ours = benchmark.pedantic(ours, rounds=1, iterations=1)

        # Arbitrary partitioner: straight vertical constrained cuts.
        cut_xs = [0.25, 0.5, 0.75]
        extra = np.array([(cx, h) for cx in cut_xs
                          for h in np.linspace(0, 0.04, 4)])
        pts = np.vstack([cloud, extra])
        # Index helper for the cut segments.
        def idx(p):
            return int(np.argmin(((pts - p) ** 2).sum(axis=1)))
        segs = []
        for cx in cut_xs:
            col = [idx((cx, h)) for h in np.linspace(0, 0.04, 4)]
            segs.extend((a, b) for a, b in zip(col, col[1:]))
        mesh_cut = constrained_delaunay(pts, np.asarray(segs))

        def near_cut_scores(mesh):
            sc_all = alignment_to_surface(mesh, surface, min_ratio=3.0)
            cents = mesh.centroids()
            _, ratio = __import__(
                "repro.analysis.metrics", fromlist=["element_directions"]
            ).element_directions(mesh)
            sel = np.isfinite(ratio) & (ratio >= 3.0)
            near = np.zeros(sel.sum(), dtype=bool)
            csel = cents[sel]
            for cx in cut_xs:
                near |= np.abs(csel[:, 0] - cx) < 0.02
            return sc_all[near]

        s_ours = near_cut_scores(mesh_ours)
        s_cut = near_cut_scores(mesh_cut)
        from conftest import print_table

        print_table(
            "Ablation — dividing paths (Section II.D): alignment of "
            "stretched elements near the cuts",
            ["partitioner", "elements scored", "median |cos| alignment"],
            [["projection paths (paper)", len(s_ours),
              f"{np.median(s_ours):.3f}" if len(s_ours) else "n/a"],
             ["arbitrary vertical cuts", len(s_cut),
              f"{np.median(s_cut):.3f}" if len(s_cut) else "n/a"]],
        )
        # Ours is A global Delaunay triangulation (the grid cloud is
        # massively cocircular, so the DT is not unique; set equality with
        # another valid DT would be too strict): verify the Delaunay
        # property and exact coverage instead.
        glob = delaunay_mesh(cloud)
        assert mesh_ours.is_conforming()
        assert mesh_ours.delaunay_violations(respect_segments=True) == 0
        assert np.abs(mesh_ours.areas()).sum() == pytest.approx(
            np.abs(glob.areas()).sum(), rel=1e-12)
        assert len(s_ours) > 0
        assert np.median(s_ours) > 0.98
        # The forced cuts insert Steiner columns that break the layer
        # alignment locally.
        if len(s_cut):
            assert np.median(s_cut) <= np.median(s_ours)
