"""E14 (extension of Figs. 11-12): weak scaling and distribution phase.

The paper evaluates strong scaling only ("the evaluation of our approach
on larger clusters is still a work in progress"); the natural companion
experiments on the simulated cluster:

* **weak scaling** — work grows with the rank count (fixed work per
  rank); efficiency should stay near-flat where strong scaling decays;
* **distribution phase** — the paper distributes subdomains through the
  recursive decompose/decouple tree ("sent to other processes until all
  processes have sufficient work"); we compare that log-depth tree
  handoff against a naive root-sequential scatter.
"""

import numpy as np
import pytest

from repro.runtime.simulator import (
    NetworkModel,
    SimConfig,
    SimTask,
    _tree_distribute,
    simulate,
)

from conftest import print_table


def tasks_for(n, seed=0, mean_cost=0.02):
    rng = np.random.default_rng(seed)
    return [SimTask(float(c), 5e4)
            for c in rng.lognormal(np.log(mean_cost), 0.6, n)]


def test_e14_weak_scaling(benchmark):
    per_rank_tasks = 64

    def run():
        out = {}
        for p in (1, 4, 16, 64, 256):
            tasks = tasks_for(per_rank_tasks * p, seed=p)
            total = sum(t.cost for t in tasks)
            cfg = SimConfig(network=NetworkModel(2e-6, 7e9),
                            per_task_overhead=1e-4)
            res = simulate(tasks, p, cfg)
            # Weak-scaling efficiency: T(1 rank's share) / T(p ranks).
            out[p] = (total / p) / res.makespan
        return out

    eff = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[p, f"{e:.0%}"] for p, e in eff.items()]
    print_table("E14 — weak scaling (fixed work per rank)",
                ["ranks", "efficiency"], rows)
    # Weak efficiency stays high out to 256 ranks.
    assert eff[256] > 0.75
    assert eff[64] > 0.8


def test_e14_tree_vs_flat_distribution(benchmark):
    """The recursive tree handoff reaches all ranks in log depth; a flat
    root scatter serialises at the root's NIC."""
    tasks = tasks_for(4096, seed=3)
    net = NetworkModel(latency=5e-6, bandwidth=1e9)

    def tree_time():
        _, ready = _tree_distribute(tasks, 256, net)
        return float(ready.max())

    t_tree = benchmark.pedantic(tree_time, rounds=1, iterations=1)
    # Flat scatter: the root sends each rank its share sequentially.
    per = 4096 // 256
    nbytes = per * 5e4
    t_flat = sum(net.xfer(nbytes) for _ in range(255))
    print_table(
        "E14 — initial distribution (recursive tree vs flat root scatter)",
        ["strategy", "time"],
        [["recursive tree (paper)", f"{t_tree * 1e3:.2f}ms"],
         ["flat root scatter", f"{t_flat * 1e3:.2f}ms"]],
    )
    assert t_tree < t_flat
