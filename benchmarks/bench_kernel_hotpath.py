"""Hot-path benchmark: overhauled Delaunay kernel vs the seed kernel.

Two scenarios on a 10k-point uniform-random workload:

``insert-loop``
    Both kernels ingest the *same* point stream in random order through
    ``insert_point`` — the canonical kernel workload (point location has
    no help from the caller).  This isolates the kernel itself: the
    overhauled kernel's grid-seeded walks stay O(1) expected while the
    seed kernel walks cold.  The >= 2x acceptance criterion is checked
    here.

``triangulate``
    End-to-end ``triangulate()`` (BRIO ordering for both).  With walks
    already short, this measures the fused insertion path and inlined
    filtered predicates against the seed's scalar-predicate path.

The seed baseline is the kernel source at the repository's root commit,
extracted via ``git show`` at runtime (no vendored copy to drift).  All
timings are interleaved best-of-N to blunt machine noise.  The fast
kernel's counters are reported afterwards; the exact-predicate
escalation rate must stay below 1% on this workload.

Run directly::

    PYTHONPATH=src python benchmarks/bench_kernel_hotpath.py [--quick]
"""

from __future__ import annotations

import argparse
import importlib.util
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.delaunay import kernel as K  # noqa: E402
from repro.runtime.counters import KernelCounters  # noqa: E402


def load_seed_kernel():
    """Import the kernel module as of the repository's root (seed) commit.

    Returns the module, or ``None`` when the history is unavailable
    (shallow clone, source tarball).
    """
    try:
        root = subprocess.run(
            ["git", "rev-list", "--max-parents=0", "HEAD"],
            cwd=REPO_ROOT, capture_output=True, text=True, check=True,
        ).stdout.split()[0]
        src = subprocess.run(
            ["git", "show", f"{root}:src/repro/delaunay/kernel.py"],
            cwd=REPO_ROOT, capture_output=True, text=True, check=True,
        ).stdout
    except (subprocess.CalledProcessError, OSError, IndexError):
        return None
    tmp = Path(tempfile.mkdtemp(prefix="seed_kernel_")) / "seed_kernel.py"
    tmp.write_text(src)
    spec = importlib.util.spec_from_file_location(
        "repro.delaunay._seed_kernel", tmp)
    mod = importlib.util.module_from_spec(spec)
    # The seed kernel uses package-relative imports; resolve them against
    # the live package (geometry/mesh modules are API-stable).
    mod.__package__ = "repro.delaunay"
    sys.modules["repro.delaunay._seed_kernel"] = mod
    spec.loader.exec_module(mod)
    return mod


def time_call(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def insert_loop(kernel_mod, coords, fast=None):
    if fast is None:
        tri = kernel_mod.Triangulation()
    else:
        tri = kernel_mod.Triangulation(fast_predicates=fast)
    insert = tri.insert_point
    for x, y in coords:
        insert(x, y)
    return tri


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--n", type=int, default=10_000,
                    help="point count (default 10000)")
    ap.add_argument("--reps", type=int, default=3,
                    help="interleaved repetitions, best-of (default 3)")
    ap.add_argument("--quick", action="store_true",
                    help="CI smoke: 4000 points, 2 reps")
    ap.add_argument("--no-check", action="store_true",
                    help="report only; skip the acceptance assertions")
    args = ap.parse_args(argv)
    if args.quick:
        args.n = min(args.n, 4000)
        args.reps = min(args.reps, 2)

    rng = np.random.default_rng(42)
    pts = rng.random((args.n, 2))
    coords = pts.tolist()

    seed_mod = load_seed_kernel()
    if seed_mod is None:
        print("WARNING: git history unavailable — no seed baseline; "
              "timing the current kernel only")

    scenarios = {}

    def record(scenario, variant, dt):
        key = (scenario, variant)
        scenarios[key] = min(scenarios.get(key, float("inf")), dt)

    for _ in range(args.reps):
        record("insert-loop", "fast",
               time_call(lambda: insert_loop(K, coords, fast=True)))
        record("triangulate", "fast",
               time_call(lambda: K.triangulate(pts)))
        record("triangulate", "ref",
               time_call(lambda: K.triangulate(pts, fast_predicates=False)))
        if seed_mod is not None:
            record("insert-loop", "seed",
                   time_call(lambda: insert_loop(seed_mod, coords)))
            record("triangulate", "seed",
                   time_call(lambda: seed_mod.triangulate(pts)))

    # Counters from one instrumented fast run of each scenario.
    kc = KernelCounters()
    kc.absorb(insert_loop(K, coords, fast=True))
    kc.absorb(K.triangulate(pts))

    print(f"\n=== kernel hot path — {args.n} uniform-random points, "
          f"best of {args.reps} ===")
    w = max(len(s) for s, _ in scenarios)
    for scenario in ("insert-loop", "triangulate"):
        fast = scenarios[(scenario, "fast")]
        line = f"  {scenario:<{w}}  fast {fast:7.3f}s"
        if (scenario, "ref") in scenarios:
            line += f"  ref {scenarios[(scenario, 'ref')]:7.3f}s"
        if (scenario, "seed") in scenarios:
            seed = scenarios[(scenario, "seed")]
            line += f"  seed {seed:7.3f}s  speedup {seed / fast:5.2f}x"
        print(line)
    print("\nfast-kernel counters:")
    print(kc.report())

    ok = True
    if seed_mod is not None and not args.no_check:
        speedup = (scenarios[("insert-loop", "seed")]
                   / scenarios[("insert-loop", "fast")])
        if speedup < 2.0:
            print(f"FAIL: insert-loop speedup {speedup:.2f}x < 2x")
            ok = False
        else:
            print(f"PASS: insert-loop speedup {speedup:.2f}x >= 2x")
    if not args.no_check:
        rate = kc.exact_escalation_rate
        if rate >= 0.01:
            print(f"FAIL: exact escalation rate {rate:.4%} >= 1%")
            ok = False
        else:
            print(f"PASS: exact escalation rate {rate:.4%} < 1%")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
