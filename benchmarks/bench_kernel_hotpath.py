"""Hot-path benchmark: overhauled Delaunay kernel vs the seed kernel.

Two scenarios on a 10k-point uniform-random workload:

``insert-loop``
    Both kernels ingest the *same* point stream in random order through
    ``insert_point`` — the canonical kernel workload (point location has
    no help from the caller).  This isolates the kernel itself: the
    overhauled kernel's grid-seeded walks stay O(1) expected while the
    seed kernel walks cold.  The >= 2x acceptance criterion is checked
    here.

``triangulate``
    End-to-end ``triangulate()`` (BRIO ordering for both).  With walks
    already short, this measures the fused insertion path and inlined
    filtered predicates against the seed's scalar-predicate path.

``finalize``
    ``Triangulation.to_mesh`` (vectorized compaction returning views
    over the SoA kernel buffers) vs a per-triangle Python-loop export on
    the *same* ~61k-triangle NACA 0012 triangulation.  The >= 10x
    acceptance criterion is checked here.

``transport``
    Shipping the finalized mesh's buffer-dict through a
    ``multiprocessing.shared_memory`` segment (the processes backend's
    >= 64 KiB path) vs a pickle round trip of the same buffers.

``batch-insert``
    ``triangulate()`` under the ``batch`` insertion strategy (BRIO
    windows binned by bucket, independent cavity sets committed with
    one vectorised retriangulation pass) vs the ``scalar`` strategy on
    the same bulk cloud.  The batch planner amortises per-level numpy
    dispatch over sub-batch size, so this scenario uses a larger cloud
    (``--batch-n``, default 40k — the windowed regime the pipeline's
    bulk CDT stage actually sees).  The >= 1.5x acceptance criterion is
    checked here at full size (smoke runs exercise both strategies but
    skip the gate: tiny clouds never fill the batch windows).

The seed baseline is the kernel source at the repository's root commit,
extracted via ``git show`` at runtime (no vendored copy to drift).  All
timings are interleaved best-of-N to blunt machine noise.  The fast
kernel's counters are reported afterwards; the exact-predicate
escalation rate must stay below 1% on this workload.  Results land in
``BENCH_kernel_hotpath.json`` at the repo root.

Run directly::

    PYTHONPATH=src python benchmarks/bench_kernel_hotpath.py [--quick]
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import pickle
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.delaunay import kernel as K  # noqa: E402
from repro.runtime import serde  # noqa: E402
from repro.runtime.counters import KernelCounters  # noqa: E402


def load_seed_kernel():
    """Import the kernel module as of the repository's root (seed) commit.

    Returns the module, or ``None`` when the history is unavailable
    (shallow clone, source tarball).
    """
    try:
        root = subprocess.run(
            ["git", "rev-list", "--max-parents=0", "HEAD"],
            cwd=REPO_ROOT, capture_output=True, text=True, check=True,
        ).stdout.split()[0]
        src = subprocess.run(
            ["git", "show", f"{root}:src/repro/delaunay/kernel.py"],
            cwd=REPO_ROOT, capture_output=True, text=True, check=True,
        ).stdout
    except (subprocess.CalledProcessError, OSError, IndexError):
        return None
    tmp = Path(tempfile.mkdtemp(prefix="seed_kernel_")) / "seed_kernel.py"
    tmp.write_text(src)
    spec = importlib.util.spec_from_file_location(
        "repro.delaunay._seed_kernel", tmp)
    mod = importlib.util.module_from_spec(spec)
    # The seed kernel uses package-relative imports; resolve them against
    # the live package (geometry/mesh modules are API-stable).
    mod.__package__ = "repro.delaunay"
    sys.modules["repro.delaunay._seed_kernel"] = mod
    spec.loader.exec_module(mod)
    return mod


def time_call(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def insert_loop(kernel_mod, coords, fast=None):
    if fast is None:
        tri = kernel_mod.Triangulation()
    else:
        tri = kernel_mod.Triangulation(fast_predicates=fast)
    insert = tri.insert_point
    for x, y in coords:
        insert(x, y)
    return tri


def naca_triangulation(n_target_tris: int):
    """A NACA 0012 triangulation with ~``n_target_tris`` triangles.

    Surface points of the airfoil plus a uniform cloud filling the
    bounding box — Euler gives ~2 interior points per triangle, so the
    cloud is sized to half the triangle target.
    """
    from repro.geometry.airfoils import naca0012

    surf = naca0012(401)
    rng = np.random.default_rng(7)
    n_cloud = max(n_target_tris // 2 - len(surf), 0)
    cloud = rng.uniform((-0.5, -0.6), (1.5, 0.6), size=(n_cloud, 2))
    return K.triangulate(np.vstack([surf, cloud]))


def python_loop_export(tri):
    """The pre-refactor finalize: per-triangle / per-vertex Python loops."""
    tris = []
    for t in tri.live_triangles():
        if tri.is_ghost(t):
            continue
        tris.append(tuple(tri.tri_v[t]))
    used = sorted({v for tr in tris for v in tr})
    remap = {v: i for i, v in enumerate(used)}
    pts = np.asarray([tri.pts[v] for v in used])
    out = np.asarray(
        [[remap[a], remap[b], remap[c]] for a, b, c in tris],
        dtype=np.int32)
    from repro.delaunay.mesh import TriMesh
    return TriMesh(pts, out)


def shm_round_trip(buffers):
    name, meta = serde.buffers_to_shm(buffers)
    return serde.buffers_from_shm(name, meta)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--n", type=int, default=10_000,
                    help="point count (default 10000)")
    ap.add_argument("--reps", type=int, default=3,
                    help="interleaved repetitions, best-of (default 3)")
    ap.add_argument("--quick", action="store_true",
                    help="CI smoke: 4000 points, 2 reps")
    ap.add_argument("--smoke", action="store_true",
                    help="alias for --quick (matches the other benches)")
    ap.add_argument("--batch-n", type=int, default=40_000,
                    help="batch-insert scenario point count (default"
                         " 40000: large enough to fill the 8192-point"
                         " BRIO windows the batch planner batches over)")
    ap.add_argument("--no-check", action="store_true",
                    help="report only; skip the acceptance assertions")
    ap.add_argument("--target-tris", type=int, default=61_000,
                    help="finalize-scenario triangle count (default 61000,"
                         " the NACA 0012 backend-scaling case)")
    ap.add_argument("--out", type=Path,
                    default=REPO_ROOT / "BENCH_kernel_hotpath.json",
                    help="JSON results path (default repo root)")
    args = ap.parse_args(argv)
    args.quick = args.quick or args.smoke
    if args.quick:
        args.n = min(args.n, 4000)
        args.reps = min(args.reps, 2)
        args.target_tris = min(args.target_tris, 12_000)
        args.batch_n = min(args.batch_n, 4000)

    rng = np.random.default_rng(42)
    pts = rng.random((args.n, 2))
    coords = pts.tolist()

    seed_mod = load_seed_kernel()
    if seed_mod is None:
        print("WARNING: git history unavailable — no seed baseline; "
              "timing the current kernel only")

    scenarios = {}

    def record(scenario, variant, dt):
        key = (scenario, variant)
        scenarios[key] = min(scenarios.get(key, float("inf")), dt)

    batch_pts = np.random.default_rng(0xBA7C4).random((args.batch_n, 2))
    for _ in range(args.reps):
        record("insert-loop", "fast",
               time_call(lambda: insert_loop(K, coords, fast=True)))
        record("triangulate", "fast",
               time_call(lambda: K.triangulate(pts)))
        record("triangulate", "ref",
               time_call(lambda: K.triangulate(pts, fast_predicates=False)))
        if seed_mod is not None:
            record("insert-loop", "seed",
                   time_call(lambda: insert_loop(seed_mod, coords)))
            record("triangulate", "seed",
                   time_call(lambda: seed_mod.triangulate(pts)))
        record("batch-insert", "scalar",
               time_call(lambda: K.triangulate(batch_pts,
                                               strategy="scalar")))
        record("batch-insert", "batch",
               time_call(lambda: K.triangulate(batch_pts,
                                               strategy="batch")))

    # Finalize + transport on the NACA 0012 case (one triangulation,
    # timed repeatedly — to_mesh does not mutate kernel state).
    naca = naca_triangulation(args.target_tris)
    mesh = naca.to_mesh()
    n_naca_tris = mesh.n_triangles
    buffers = serde.pack_mesh(mesh)
    shm_bytes = serde.buffers_nbytes(buffers)
    for _ in range(args.reps):
        record("finalize", "fast", time_call(naca.to_mesh))
        record("finalize", "loop", time_call(lambda: python_loop_export(naca)))
        record("transport", "shm", time_call(lambda: shm_round_trip(buffers)))
        record("transport", "pickle", time_call(
            lambda: serde.unpack_mesh(pickle.loads(pickle.dumps(buffers)))))

    # Counters from one instrumented fast run of each scenario — the
    # batch-strategy run included, so the exact-escalation gate below
    # covers the vectorised predicate batches too.
    kc = KernelCounters()
    kc.absorb(insert_loop(K, coords, fast=True))
    kc.absorb(K.triangulate(pts))
    batch_tri = K.triangulate(batch_pts, strategy="batch")
    kc.absorb(batch_tri)
    kc.absorb(naca)

    print(f"\n=== kernel hot path — {args.n} uniform-random points, "
          f"best of {args.reps} ===")
    w = max(len(s) for s, _ in scenarios)
    for scenario in ("insert-loop", "triangulate"):
        fast = scenarios[(scenario, "fast")]
        line = f"  {scenario:<{w}}  fast {fast:7.3f}s"
        if (scenario, "ref") in scenarios:
            line += f"  ref {scenarios[(scenario, 'ref')]:7.3f}s"
        if (scenario, "seed") in scenarios:
            seed = scenarios[(scenario, "seed")]
            line += f"  seed {seed:7.3f}s  speedup {seed / fast:5.2f}x"
        print(line)
    fin_fast = scenarios[("finalize", "fast")]
    fin_loop = scenarios[("finalize", "loop")]
    print(f"  {'finalize':<{w}}  fast {fin_fast:7.3f}s  "
          f"loop {fin_loop:7.3f}s  speedup {fin_loop / fin_fast:5.2f}x  "
          f"({n_naca_tris} NACA 0012 triangles)")
    tr_shm = scenarios[("transport", "shm")]
    tr_pkl = scenarios[("transport", "pickle")]
    print(f"  {'transport':<{w}}  shm  {tr_shm:7.3f}s  "
          f"pickle {tr_pkl:7.3f}s  ({shm_bytes} bytes)")
    bat = scenarios[("batch-insert", "batch")]
    sca = scenarios[("batch-insert", "scalar")]
    print(f"  {'batch-insert':<{w}}  batch {bat:6.3f}s  "
          f"scalar {sca:6.3f}s  speedup {sca / bat:5.2f}x  "
          f"({args.batch_n} points, {batch_tri.stat_batch_points} "
          f"batch-committed, {batch_tri.stat_conflict_retries} retries)")
    print("\nfast-kernel counters:")
    print(kc.report())

    ok = True
    checks = {}
    if seed_mod is not None and not args.no_check:
        speedup = (scenarios[("insert-loop", "seed")]
                   / scenarios[("insert-loop", "fast")])
        checks["insert_speedup_vs_seed"] = round(speedup, 2)
        if speedup < 2.0:
            print(f"FAIL: insert-loop speedup {speedup:.2f}x < 2x")
            ok = False
        else:
            print(f"PASS: insert-loop speedup {speedup:.2f}x >= 2x")
    if not args.no_check:
        batch_speedup = sca / bat
        checks["batch_insert_speedup_vs_scalar"] = round(batch_speedup, 2)
        if args.quick:
            # Smoke clouds never fill the batch windows; the scenario
            # still exercises both strategies but the gate only means
            # something at full size.
            print(f"note: batch-insert speedup {batch_speedup:.2f}x "
                  f"(gate skipped under --smoke/--quick)")
        elif batch_speedup < 1.5:
            print(f"FAIL: batch-insert speedup {batch_speedup:.2f}x "
                  f"< 1.5x")
            ok = False
        else:
            print(f"PASS: batch-insert speedup {batch_speedup:.2f}x "
                  f">= 1.5x")
        fin_speedup = fin_loop / fin_fast
        checks["finalize_speedup_vs_loop"] = round(fin_speedup, 2)
        if fin_speedup < 10.0:
            print(f"FAIL: finalize speedup {fin_speedup:.2f}x < 10x")
            ok = False
        else:
            print(f"PASS: finalize speedup {fin_speedup:.2f}x >= 10x")
        rate = kc.exact_escalation_rate
        if rate >= 0.01:
            print(f"FAIL: exact escalation rate {rate:.4%} >= 1%")
            ok = False
        else:
            print(f"PASS: exact escalation rate {rate:.4%} < 1%")

    payload = {
        "bench": "kernel_hotpath",
        "case": {"n_points": args.n, "reps": args.reps,
                 "quick": bool(args.quick),
                 "finalize_case": "naca0012",
                 "finalize_n_triangles": n_naca_tris,
                 "batch_n_points": args.batch_n,
                 "batch_points_committed": batch_tri.stat_batch_points,
                 "batch_conflict_retries":
                     batch_tri.stat_conflict_retries},
        "seconds": {
            f"{scenario}/{variant}": round(dt, 6)
            for (scenario, variant), dt in sorted(scenarios.items())
        },
        "transport_bytes": shm_bytes,
        "finalize_ns_counter": kc.finalize_ns,
        "checks": checks,
        "passed": ok,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.out}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
