"""E6 / Figs. 3-4: large-angle / cusp refinement fixes trailing-edge quality.

Paper: the slope discontinuity at the trailing edge produces "poorly
sized triangles" because "the distance between vertices of neighboring
rays will grow at excessively rapid rates" (Fig. 3); the fan of rays
fixes the gradation (Fig. 4).  We build the boundary layer with the fan
machinery disabled and enabled and measure exactly that quantity: the
gap between neighbouring ray tips near the trailing edge.
"""

import math

import numpy as np
import pytest

from repro.core.bl_pipeline import BoundaryLayerConfig, generate_boundary_layer
from repro.geometry.airfoils import naca4
from repro.geometry.pslg import PSLG

from conftest import print_table


def max_tip_gap_near(rays, where=(1.0, 0.0), radius=0.05):
    """Largest tip-to-tip distance between consecutive rays whose origins
    lie near ``where`` — the interpolation-error driver of Fig. 3."""
    gaps = []
    for r1, r2 in zip(rays, rays[1:] + rays[:1]):
        if (math.hypot(r1.origin[0] - where[0], r1.origin[1] - where[1])
                < radius):
            t1, t2 = r1.tip(), r2.tip()
            gaps.append(math.hypot(t1[0] - t2[0], t1[1] - t2[1]))
    return max(gaps) if gaps else 0.0


def diamond_airfoil(n_per_side=30, thickness=0.08):
    """Wedge section with uniform surface spacing and two sharp cusps.

    Uniform spacing matters for this experiment: cosine clustering hides
    the Fig. 3 artifact by making the boundary layer paper-thin at the
    trailing edge (the isotropy hand-off).  A uniformly sampled wedge
    keeps full-height rays right up to the cusp.
    """
    t = thickness / 2.0
    corners = [(1.0, 0.0), (0.5, t), (0.0, 0.0), (0.5, -t)]
    pts = []
    for a, b in zip(corners, corners[1:] + corners[:1]):
        for s in np.linspace(0, 1, n_per_side, endpoint=False):
            pts.append((a[0] + s * (b[0] - a[0]), a[1] + s * (b[1] - a[1])))
    return np.asarray(pts)


def test_fig34_fan_shrinks_tip_gaps(benchmark):
    pslg = PSLG.from_loops([diamond_airfoil()])

    def run():
        out = {}
        for label, max_angle in (("no fans (Fig. 3)", 175.0),
                                 ("with fans (Fig. 4)", 20.0)):
            cfg = BoundaryLayerConfig(
                first_spacing=2e-3, growth_ratio=1.4, max_layers=12,
                max_ray_angle_deg=max_angle,
            )
            res = generate_boundary_layer(pslg, cfg)
            out[label] = res
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    gaps = {}
    for label, res in out.items():
        g = max_tip_gap_near(res.element_rays[0])
        gaps[label] = g
        rows.append([label, int(res.stats["n_rays"]),
                     int(res.stats["n_triangles"]), f"{g:.4f}"])
    print_table(
        "Figs. 3-4 — max neighbouring-ray tip gap at the trailing edge",
        ["variant", "rays", "BL tris", "max TE tip gap"], rows,
    )
    g0 = gaps["no fans (Fig. 3)"]
    g1 = gaps["with fans (Fig. 4)"]
    assert out["with fans (Fig. 4)"].stats["n_rays"] > \
        out["no fans (Fig. 3)"].stats["n_rays"]
    # The fan divides the huge TE gap into properly sized steps.
    assert g1 < 0.55 * g0


def test_fig4_fan_rays_uniform_angular_steps(benchmark):
    """The fan directions sweep the cusp wedge in uniform angular steps
    bounded by the configured maximum ray angle."""
    from repro.core.normals import loop_surface_vertices
    from repro.core.rays import refine_rays

    pslg = PSLG.from_loops([naca4("4412", 101)])

    def run():
        sv = loop_surface_vertices(pslg, pslg.loops[0])
        return refine_rays(sv, max_ray_angle=math.radians(15))

    rays = benchmark.pedantic(run, rounds=1, iterations=1)
    te = max((r.origin for r in rays), key=lambda p: p[0])
    fan = [r for r in rays if r.origin == te]
    assert len(fan) >= 8
    # Sort the fan by direction angle (list order follows the loop
    # traversal, which wraps around the first vertex).
    angles = np.sort([math.atan2(r.direction[1], r.direction[0])
                      for r in fan])
    steps = np.degrees(np.diff(angles))
    print_table(
        "Fig. 4 — cusp fan uniformity",
        ["metric", "value"],
        [["fan rays", len(fan)],
         ["arc covered (deg)", f"{angles[-1] * 180 / math.pi - angles[0] * 180 / math.pi:.1f}"],
         ["max angular step (deg)", f"{steps.max():.1f}"],
         ["min angular step (deg)", f"{steps.min():.1f}"]],
    )
    # Uniform steps within the configured bound.
    assert steps.max() <= 15 + 1e-6
    # The fan spans a wide wedge (the ~164-degree cusp of the 4412 TE).
    assert (angles[-1] - angles[0]) > math.radians(120)
