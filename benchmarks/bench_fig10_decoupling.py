"""E5 / Figs. 9-10: graded decoupled inviscid subdomains.

Paper Fig. 9 shows the four initial quadrants, Fig. 10 the recursively
'+'-split subdomains, "decoupled based on the estimated number of
triangles ... each subdomain has roughly the same number of triangles".
We regenerate the decoupling for a graded sizing field and report the
estimated vs. actual per-subdomain triangle counts and the conformity of
the independently refined union.
"""

import numpy as np
import pytest

from repro.core.decouple import (
    decouple,
    estimate_triangles,
    initial_quadrants,
    refine_subdomain,
)
from repro.delaunay.mesh import merge_meshes
from repro.geometry.aabb import AABB
from repro.sizing.functions import RadialSizing

from conftest import print_table


def test_fig9_initial_quadrants(benchmark):
    sizing = RadialSizing((0, 0), h0=0.2, grading=0.3, h_max=4.0)
    quads = benchmark.pedantic(
        lambda: initial_quadrants(AABB(-1, -1, 1, 1), AABB(-20, -20, 20, 20),
                                  sizing),
        rounds=1, iterations=1,
    )
    areas = [q.area() for q in quads]
    print_table(
        "Fig. 9 — initial quadrants",
        ["quadrant", "border vertices", "area"],
        [[i, len(q.ring), f"{a:.1f}"] for i, (q, a) in
         enumerate(zip(quads, areas))],
    )
    assert len(quads) == 4
    assert sum(areas) == pytest.approx(1600 - 4)


def test_fig10_balanced_decoupling(benchmark):
    sizing = RadialSizing((0, 0), h0=0.18, grading=0.3, h_max=4.0)

    def run():
        quads = initial_quadrants(AABB(-1, -1, 1, 1),
                                  AABB(-20, -20, 20, 20), sizing)
        subs = decouple(quads, sizing, target_count=24)
        meshes = [refine_subdomain(s, sizing) for s in subs]
        return subs, meshes

    subs, meshes = benchmark.pedantic(run, rounds=1, iterations=1)
    ests = [estimate_triangles(s, sizing) for s in subs]
    actuals = [m.n_triangles for m in meshes]
    rows = [[i, f"{e:.0f}", a, f"{s.area():.1f}"]
            for i, (e, a, s) in enumerate(zip(ests, actuals, subs))]
    print_table(
        "Fig. 10 — decoupled subdomains (paper: roughly equal triangle "
        "counts; near-body subdomains smaller in area)",
        ["sub", "estimated", "actual", "area"], rows,
    )
    merged = merge_meshes(meshes)
    assert merged.is_conforming()
    assert np.abs(merged.areas()).sum() == pytest.approx(1600 - 4, rel=1e-9)
    # Balance: actual triangle counts within one order of magnitude.
    assert max(actuals) / max(min(actuals), 1) < 12
    # Estimates correlate with actuals (rank correlation).
    from scipy.stats import spearmanr

    rho, _ = spearmanr(ests, actuals)
    print(f"  estimate/actual Spearman rho = {rho:.2f}")
    assert rho > 0.6
    # The paper's visual: subdomains near the centre (fine sizing) have
    # smaller areas for the same triangle count.
    centre_area = min(abs(s.area()) for s in subs)
    edge_area = max(abs(s.area()) for s in subs)
    assert edge_area > 3 * centre_area
