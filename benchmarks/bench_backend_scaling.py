"""Backend scaling benchmark: serial vs threads vs processes.

The tentpole claim of the executor layer is that the ``processes``
backend delivers real wall-clock speedup for the paper's headline
workload — independent Ruppert refinement of decoupled subdomains —
where the ``threads`` backend cannot (the GIL serializes pure-Python
refinement; it models the runtime, not the hardware).

The full case is a NACA 0012 push-button mesh tuned so no single
subdomain dominates (near-body ~22% of refinement work, largest
inviscid subdomain ~12%): ≥50k triangles across 32 decoupled
subdomains.  Each backend refines the *identical* subdomain set, so the
triangle counts must agree exactly — measured here as a parity check.

Acceptance gate: ``processes`` at 4 workers must beat ``serial`` by
>= 1.8x.  The gate is only *enforced* when the machine actually has
>= 4 usable cores (``os.sched_getaffinity``) — on smaller machines the
numbers are still measured and reported, but a speedup no hardware
could deliver is not demanded.

Emits ``BENCH_backend_scaling.json`` next to the repo root (one
trajectory point per run) and prints a table.

Run directly::

    PYTHONPATH=src python benchmarks/bench_backend_scaling.py [--smoke]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.bl_pipeline import BoundaryLayerConfig  # noqa: E402
from repro.core.pipeline import MeshConfig, generate_mesh  # noqa: E402
from repro.geometry.airfoils import naca0012  # noqa: E402
from repro.geometry.pslg import PSLG  # noqa: E402

GATE_SPEEDUP = 1.8
GATE_WORKERS = 4
GATE_MIN_TRIANGLES = 50_000


def full_case():
    """~60k triangles over 32 subdomains, flat load profile (~10s serial)."""
    pslg = PSLG.from_loops([naca0012(121)])
    config = MeshConfig(
        bl=BoundaryLayerConfig(first_spacing=1e-3, growth_ratio=1.3,
                               max_layers=25),
        farfield_chords=30.0,
        grading=0.05,
        h_max_chords=1.2,
        nearbody_margin_chords=0.25,
        target_subdomains=32,
    )
    return pslg, config


def smoke_case():
    """CI smoke: same shape, a few seconds end to end."""
    pslg = PSLG.from_loops([naca0012(61)])
    config = MeshConfig(
        bl=BoundaryLayerConfig(first_spacing=2e-3, growth_ratio=1.4,
                               max_layers=12),
        farfield_chords=10.0,
        target_subdomains=12,
    )
    return pslg, config


def usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--workers", type=int, default=GATE_WORKERS,
                    help=f"parallel worker count (default {GATE_WORKERS})")
    ap.add_argument("--smoke", action="store_true",
                    help="CI smoke: small case, gate reported but never "
                    "enforced")
    ap.add_argument("--skip-threads", action="store_true",
                    help="skip the GIL-bound threads backend (it only "
                    "demonstrates the baseline the processes backend "
                    "beats)")
    ap.add_argument("--out", type=Path,
                    default=REPO_ROOT / "BENCH_backend_scaling.json",
                    help="JSON output path")
    ap.add_argument("--no-check", action="store_true",
                    help="report only; never fail the gate")
    args = ap.parse_args(argv)

    pslg, config = smoke_case() if args.smoke else full_case()
    backends = ["serial", "threads", "processes"]
    if args.skip_threads:
        backends.remove("threads")

    cpus = usable_cpus()
    times = {}
    triangles = {}
    for name in backends:
        t0 = time.perf_counter()
        result = generate_mesh(pslg, config, backend=name,
                               n_ranks=args.workers)
        dt = time.perf_counter() - t0
        times[name] = dt
        triangles[name] = result.mesh.n_triangles
        refine = result.timings["refinement"]
        print(f"  {name:<10}  total {dt:7.2f}s  refinement {refine:7.2f}s"
              f"  ({result.mesh.n_triangles} triangles)")

    ok = True
    if len(set(triangles.values())) != 1:
        print(f"FAIL: backends disagree on triangle count: {triangles}")
        ok = False

    serial_t = times["serial"]
    speedups = {n: serial_t / times[n] for n in backends if n != "serial"}
    for name, s in sorted(speedups.items()):
        print(f"  speedup {name} vs serial at {args.workers} workers: "
              f"{s:.2f}x")

    n_tris = triangles["serial"]
    gate_applicable = (not args.smoke and not args.no_check
                       and "processes" in times
                       and args.workers >= GATE_WORKERS
                       and n_tris >= GATE_MIN_TRIANGLES)
    gate_enforced = gate_applicable and cpus >= GATE_WORKERS
    gate_passed = None
    if "processes" in speedups:
        gate_passed = speedups["processes"] >= GATE_SPEEDUP
    if gate_enforced:
        if gate_passed:
            print(f"PASS: processes speedup {speedups['processes']:.2f}x "
                  f">= {GATE_SPEEDUP}x")
        else:
            print(f"FAIL: processes speedup {speedups['processes']:.2f}x "
                  f"< {GATE_SPEEDUP}x on {cpus} cpus")
            ok = False
    elif gate_applicable:
        print(f"gate skipped ({cpus} usable cpus < {GATE_WORKERS}; "
              f"measured {speedups.get('processes', 0.0):.2f}x, "
              "no hardware to demand more from)")
    else:
        print("gate not applicable (smoke/no-check/small case)")

    payload = {
        "bench": "backend_scaling",
        "case": {
            "geometry": "naca0012",
            "surface_points": len(pslg.points),
            "target_subdomains": config.target_subdomains,
            "smoke": bool(args.smoke),
        },
        "cpus": cpus,
        "workers": args.workers,
        "n_triangles": n_tris,
        "seconds": {n: round(t, 3) for n, t in times.items()},
        "speedup_vs_serial": {n: round(s, 3) for n, s in speedups.items()},
        "gate": {
            "threshold": GATE_SPEEDUP,
            "enforced": bool(gate_enforced),
            "passed": gate_passed,
        },
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
