"""Backend scaling benchmark: serial vs threads vs processes.

The tentpole claim of the executor layer is that the ``processes``
backend delivers real wall-clock speedup for the paper's headline
workload — independent Ruppert refinement of decoupled subdomains —
where the ``threads`` backend cannot (the GIL serializes pure-Python
refinement; it models the runtime, not the hardware).

The full case is a NACA 0012 push-button mesh tuned so no single
subdomain dominates (near-body ~22% of refinement work, largest
inviscid subdomain ~12%): ≥50k triangles across 32 decoupled
subdomains.  Each backend refines the *identical* subdomain set, so the
triangle counts must agree exactly — measured here as a parity check.

Acceptance gate: ``processes`` at 4 workers must beat ``serial`` by
>= 1.8x.  The gate is only *enforced* when the machine actually has
>= 4 usable cores (``os.sched_getaffinity``) — on smaller machines the
numbers are still measured and reported, but a speedup no hardware
could deliver is not demanded.

Two further scenarios ride along:

- **dispatch overhead** — repeated tiny ``map_workitems`` batches
  against a fork-per-call ``ProcessesBackend(persistent=False)`` vs the
  persistent warm pool.  The warm pool must cut per-call dispatch
  overhead by >= 5x (enforced in full mode; the work itself is
  negligible, so the per-call wall time *is* the dispatch cost).
- **calibrated strong scaling** — a measured ``processes`` run under
  the profiling sink feeds
  :func:`repro.runtime.simulator.calibrate_from_counters` (per-item
  costs/sizes, fitted shm network model, measured setup phases), and
  the discrete-event simulator replays the paper's 256-rank study
  (Figs. 11-12).  The speedup curve must be monotone with cluster-class
  speedup at 256 ranks (enforced in full mode).

Emits ``BENCH_backend_scaling.json`` next to the repo root (one
trajectory point per run) and prints a table.

Run directly::

    PYTHONPATH=src python benchmarks/bench_backend_scaling.py [--smoke]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.core.bl_pipeline import BoundaryLayerConfig  # noqa: E402
from repro.core.pipeline import MeshConfig, generate_mesh  # noqa: E402
from repro.geometry.airfoils import naca0012  # noqa: E402
from repro.geometry.pslg import PSLG  # noqa: E402
from repro.runtime import executor, serde  # noqa: E402
from repro.runtime.counters import use_counters  # noqa: E402
from repro.runtime.simulator import (  # noqa: E402
    calibrate_from_counters,
    strong_scaling,
)

GATE_SPEEDUP = 1.8
GATE_WORKERS = 4
GATE_MIN_TRIANGLES = 50_000

#: warm pool must cut per-call dispatch overhead by this factor.
DISPATCH_GATE = 5.0
DISPATCH_BATCHES = 12
DISPATCH_ITEMS = 4

#: simulated rank counts for the calibrated Figs. 11-12 replay.
SIM_RANKS = [1, 2, 4, 8, 16, 32, 64, 128, 256]
#: calibrated-shape gate: cluster-class speedup at 256 simulated ranks.
SIM_GATE_S256 = 100.0
SIM_GATE_S16 = 12.0


def full_case():
    """~60k triangles over 32 subdomains, flat load profile (~10s serial)."""
    pslg = PSLG.from_loops([naca0012(121)])
    config = MeshConfig(
        bl=BoundaryLayerConfig(first_spacing=1e-3, growth_ratio=1.3,
                               max_layers=25),
        farfield_chords=30.0,
        grading=0.05,
        h_max_chords=1.2,
        nearbody_margin_chords=0.25,
        target_subdomains=32,
    )
    return pslg, config


def smoke_case():
    """CI smoke: same shape, a few seconds end to end."""
    pslg = PSLG.from_loops([naca0012(61)])
    config = MeshConfig(
        bl=BoundaryLayerConfig(first_spacing=2e-3, growth_ratio=1.4,
                               max_layers=12),
        farfield_chords=10.0,
        target_subdomains=12,
    )
    return pslg, config


def usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _echo(payload):
    """Near-zero-work executor item: per-call wall time ~= dispatch cost."""
    return payload


def measure_dispatch_overhead(workers: int) -> dict:
    """Per-call overhead of fork-per-call vs the persistent warm pool."""
    payloads = [{"x": np.full(8, float(i))} for i in range(DISPATCH_ITEMS)]

    def per_call(backend) -> float:
        backend.map_workitems(_echo, payloads, n_ranks=workers)  # warmup
        t0 = time.perf_counter()
        for _ in range(DISPATCH_BATCHES):
            backend.map_workitems(_echo, payloads, n_ranks=workers)
        return (time.perf_counter() - t0) / DISPATCH_BATCHES

    cold = executor.ProcessesBackend(persistent=False)
    warm = executor.ProcessesBackend(persistent=True)
    try:
        cold_s = per_call(cold)
        warm_s = per_call(warm)
    finally:
        warm.shutdown_pool()
    ratio = cold_s / warm_s if warm_s > 0 else float("inf")
    print(f"  dispatch overhead per map_workitems call "
          f"({DISPATCH_ITEMS} items, {workers} ranks):")
    print(f"    fork-per-call {cold_s * 1e3:8.2f} ms")
    print(f"    warm pool     {warm_s * 1e3:8.2f} ms   ({ratio:.1f}x less)")
    return {"fork_per_call_s": round(cold_s, 5),
            "warm_pool_s": round(warm_s, 5),
            "ratio": round(ratio, 2)}


def calibrated_strong_scaling(pslg, config, workers: int) -> dict:
    """Measure a processes run, calibrate the simulator, replay Fig. 11."""
    # Lower the shm threshold so even smoke-size payloads travel through
    # shared memory in both directions, producing (nbytes, seconds) fit
    # samples for the network model; force the warm pool on — the
    # fork-per-call path records no per-item samples.
    saved_threshold = serde.SHM_MIN_BYTES
    saved_pool = os.environ.get(executor.POOL_ENV)
    serde.SHM_MIN_BYTES = 2048
    os.environ[executor.POOL_ENV] = "1"
    registry_backend = executor.get_backend("processes")
    # Workers inherit the shm threshold at fork time: cycle any pool the
    # earlier scenarios warmed up so its workers re-fork with the
    # lowered threshold (and again afterwards, so no worker keeps it).
    registry_backend.shutdown_pool()
    try:
        with use_counters() as sink:
            generate_mesh(pslg, config, backend="processes",
                          n_ranks=workers)
    finally:
        serde.SHM_MIN_BYTES = saved_threshold
        if saved_pool is None:
            os.environ.pop(executor.POOL_ENV, None)
        else:
            os.environ[executor.POOL_ENV] = saved_pool
        registry_backend.shutdown_pool()

    tasks, simcfg = calibrate_from_counters(sink)
    total = sum(t.cost for t in tasks)
    # Triangle (the best sequential mesher) runs ~2% faster than the
    # per-subdomain sum — same baseline as the Fig. 11 reference bench.
    table = strong_scaling(tasks, SIM_RANKS, simcfg,
                           t_sequential=total / 1.02)
    net = simcfg.network
    print(f"  calibrated simulator: {len(tasks)} tasks, "
          f"{total:.1f}s total work, serial setup "
          f"{simcfg.serial_setup * 1e3:.0f} ms,")
    print(f"    network latency {net.latency * 1e6:.1f} us, "
          f"bandwidth {net.bandwidth / 1e9:.2f} GB/s")
    print("    ranks   speedup   efficiency")
    for p in SIM_RANKS:
        print(f"    {p:>5}   {table[p]['speedup']:7.1f}   "
              f"{table[p]['efficiency']:10.3f}")
    return {
        "n_tasks": len(tasks),
        "total_work_s": round(total, 3),
        "serial_setup_s": round(simcfg.serial_setup, 4),
        "network": {"latency_s": net.latency,
                    "bandwidth_Bps": net.bandwidth},
        "speedup": {str(p): round(table[p]["speedup"], 2)
                    for p in SIM_RANKS},
        "efficiency": {str(p): round(table[p]["efficiency"], 4)
                       for p in SIM_RANKS},
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--workers", type=int, default=GATE_WORKERS,
                    help=f"parallel worker count (default {GATE_WORKERS})")
    ap.add_argument("--smoke", action="store_true",
                    help="CI smoke: small case, gate reported but never "
                    "enforced")
    ap.add_argument("--skip-threads", action="store_true",
                    help="skip the GIL-bound threads backend (it only "
                    "demonstrates the baseline the processes backend "
                    "beats)")
    ap.add_argument("--out", type=Path,
                    default=REPO_ROOT / "BENCH_backend_scaling.json",
                    help="JSON output path")
    ap.add_argument("--no-check", action="store_true",
                    help="report only; never fail the gate")
    args = ap.parse_args(argv)

    pslg, config = smoke_case() if args.smoke else full_case()
    backends = ["serial", "threads", "processes"]
    if args.skip_threads:
        backends.remove("threads")

    cpus = usable_cpus()
    times = {}
    triangles = {}
    for name in backends:
        t0 = time.perf_counter()
        result = generate_mesh(pslg, config, backend=name,
                               n_ranks=args.workers)
        dt = time.perf_counter() - t0
        times[name] = dt
        triangles[name] = result.mesh.n_triangles
        refine = result.timings["refinement"]
        print(f"  {name:<10}  total {dt:7.2f}s  refinement {refine:7.2f}s"
              f"  ({result.mesh.n_triangles} triangles)")

    ok = True
    if len(set(triangles.values())) != 1:
        print(f"FAIL: backends disagree on triangle count: {triangles}")
        ok = False

    serial_t = times["serial"]
    speedups = {n: serial_t / times[n] for n in backends if n != "serial"}
    for name, s in sorted(speedups.items()):
        print(f"  speedup {name} vs serial at {args.workers} workers: "
              f"{s:.2f}x")

    n_tris = triangles["serial"]
    gate_applicable = (not args.smoke and not args.no_check
                       and "processes" in times
                       and args.workers >= GATE_WORKERS
                       and n_tris >= GATE_MIN_TRIANGLES)
    gate_enforced = gate_applicable and cpus >= GATE_WORKERS
    gate_passed = None
    if "processes" in speedups:
        gate_passed = speedups["processes"] >= GATE_SPEEDUP
    if gate_enforced:
        if gate_passed:
            print(f"PASS: processes speedup {speedups['processes']:.2f}x "
                  f">= {GATE_SPEEDUP}x")
        else:
            print(f"FAIL: processes speedup {speedups['processes']:.2f}x "
                  f"< {GATE_SPEEDUP}x on {cpus} cpus")
            ok = False
    elif gate_applicable:
        print(f"gate skipped ({cpus} usable cpus < {GATE_WORKERS}; "
              f"measured {speedups.get('processes', 0.0):.2f}x, "
              "no hardware to demand more from)")
    else:
        print("gate not applicable (smoke/no-check/small case)")

    # ------------------------------------------------------------------
    # Scenario 2: warm-pool dispatch overhead.
    # ------------------------------------------------------------------
    dispatch = measure_dispatch_overhead(args.workers)
    extras_enforced = not args.smoke and not args.no_check
    if extras_enforced:
        if dispatch["ratio"] >= DISPATCH_GATE:
            print(f"PASS: warm pool cuts dispatch overhead "
                  f"{dispatch['ratio']:.1f}x >= {DISPATCH_GATE}x")
        else:
            print(f"FAIL: warm pool dispatch-overhead reduction "
                  f"{dispatch['ratio']:.1f}x < {DISPATCH_GATE}x")
            ok = False
    else:
        print("dispatch gate reported only (smoke/no-check)")

    # ------------------------------------------------------------------
    # Scenario 3: calibrated Figs. 11-12 strong-scaling replay.
    # ------------------------------------------------------------------
    sim = calibrated_strong_scaling(pslg, config, args.workers)
    sim_speedups = [sim["speedup"][str(p)] for p in SIM_RANKS]
    # 2% slack on monotonicity: measured (jittered) task sets may trade
    # a hair of makespan for distribution cost between adjacent counts.
    sim_monotone = all(b >= 0.98 * a for a, b in zip(sim_speedups,
                                                     sim_speedups[1:]))
    sim_shape_ok = (sim_monotone
                    and sim["speedup"]["16"] >= SIM_GATE_S16
                    and sim["speedup"]["256"] >= SIM_GATE_S256
                    and sim["speedup"]["256"] <= 256.0)
    sim["shape_ok"] = bool(sim_shape_ok)
    if extras_enforced:
        if sim_shape_ok:
            print(f"PASS: calibrated scaling shape (monotone, "
                  f"s16={sim['speedup']['16']:.1f} >= {SIM_GATE_S16}, "
                  f"s256={sim['speedup']['256']:.1f} >= {SIM_GATE_S256})")
        else:
            print(f"FAIL: calibrated scaling shape off the paper's curve "
                  f"(monotone={sim_monotone}, s16={sim['speedup']['16']}, "
                  f"s256={sim['speedup']['256']})")
            ok = False
    else:
        print("calibrated-scaling gate reported only (smoke/no-check)")

    payload = {
        "bench": "backend_scaling",
        "case": {
            "geometry": "naca0012",
            "surface_points": len(pslg.points),
            "target_subdomains": config.target_subdomains,
            "smoke": bool(args.smoke),
        },
        "cpus": cpus,
        "workers": args.workers,
        "n_triangles": n_tris,
        "seconds": {n: round(t, 3) for n, t in times.items()},
        "speedup_vs_serial": {n: round(s, 3) for n, s in speedups.items()},
        "gate": {
            "threshold": GATE_SPEEDUP,
            "enforced": bool(gate_enforced),
            "passed": gate_passed,
        },
        "dispatch_overhead": {
            **dispatch,
            "threshold": DISPATCH_GATE,
            "enforced": bool(extras_enforced),
        },
        "calibrated_scaling": {
            **sim,
            "gate_s16": SIM_GATE_S16,
            "gate_s256": SIM_GATE_S256,
            "enforced": bool(extras_enforced),
        },
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
