"""E1 / Fig. 11: strong-scaling speedup, 1 -> 256 ranks, fixed mesh.

Paper: speedup ~102 at 128 ranks, ~180 at 256, measured against the
fastest sequential tool (Triangle).  Here the per-subdomain costs come
from the live kernel and are replayed on the discrete-event cluster
simulator with a 4X-FDR-Infiniband network model.
"""

import pytest

from repro.runtime.simulator import NetworkModel, SimConfig, simulate, strong_scaling

from conftest import print_table

RANKS = [1, 2, 4, 8, 16, 32, 64, 128, 256]


def make_config(total_work: float) -> SimConfig:
    return SimConfig(
        network=NetworkModel(latency=2e-6, bandwidth=7e9),
        serial_setup=0.002 * total_work,
        per_task_overhead=1e-4,
    )


def test_fig11_speedup_series(benchmark, measured_tasks):
    total = sum(t.cost for t in measured_tasks)

    def run():
        # Sequential baseline: Triangle does ~2% less work than the
        # decoupled pipeline (paper Section IV: 192 s vs 196 s).
        return strong_scaling(measured_tasks, RANKS, make_config(total),
                              t_sequential=total / 1.02)

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[p, f"{table[p]['speedup']:.1f}",
             f"{table[p]['makespan']:.3f}s",
             int(table[p]['steals'])] for p in RANKS]
    print_table(
        "Fig. 11 — strong-scaling speedup (paper: ~102 @128, ~180 @256)",
        ["ranks", "speedup", "makespan", "steals"], rows,
    )
    s = {p: table[p]["speedup"] for p in RANKS}
    # Shape assertions: monotone growth, paper-magnitude speedups.
    assert all(s[RANKS[i + 1]] > s[RANKS[i]] for i in range(len(RANKS) - 1))
    assert 70 <= s[128] <= 128
    assert 120 <= s[256] <= 230
    assert s[1] == pytest.approx(1 / 1.02, rel=0.02)


def test_fig11_single_simulation_cost(benchmark, measured_tasks):
    """The 256-rank simulation itself is cheap enough to sweep."""
    total = sum(t.cost for t in measured_tasks)
    res = benchmark.pedantic(
        simulate, args=(measured_tasks, 256, make_config(total)),
        rounds=3, iterations=1,
    )
    assert res.makespan > 0
