"""E12 / Section IV text: output cost — ASCII vs binary mesh writing.

Paper: "The sequential time to write an ASCII file for the mesh with
172,768,355 triangles is 9 minutes ... If a flow solver can handle a
distributed mesh or read from a binary file, the writing time will be
less."  We measure the ASCII/binary write-time ratio on a large mesh.
"""

import time

import numpy as np
import pytest

from repro.delaunay.kernel import delaunay_mesh
from repro.io.meshio import (
    read_mesh_ascii,
    read_mesh_npz,
    write_mesh_ascii,
    write_mesh_npz,
)

from conftest import print_table


@pytest.fixture(scope="module")
def big_mesh():
    rng = np.random.default_rng(0)
    pts = rng.uniform(0, 100, size=(40_000, 2))
    return delaunay_mesh(pts)


def test_e12_ascii_vs_binary_write(benchmark, big_mesh, tmp_path_factory):
    tmp = tmp_path_factory.mktemp("io")

    t0 = time.perf_counter()
    write_mesh_ascii(tmp / "mesh", big_mesh)
    t_ascii = time.perf_counter() - t0

    t0 = time.perf_counter()
    write_mesh_npz(tmp / "mesh.npz", big_mesh)
    t_npz = time.perf_counter() - t0

    benchmark.pedantic(lambda: write_mesh_npz(tmp / "again.npz", big_mesh),
                       rounds=3, iterations=1)
    ascii_bytes = ((tmp / "mesh.node").stat().st_size
                   + (tmp / "mesh.ele").stat().st_size)
    npz_bytes = (tmp / "mesh.npz").stat().st_size
    print_table(
        "E12 — output cost (paper: ASCII write dominates; binary is the fix)",
        ["format", "write time", "size"],
        [
            ["ASCII .node/.ele", f"{t_ascii:.2f}s",
             f"{ascii_bytes / 1e6:.1f} MB"],
            ["binary .npz", f"{t_npz:.2f}s", f"{npz_bytes / 1e6:.1f} MB"],
            ["ratio", f"{t_ascii / max(t_npz, 1e-9):.1f}x", ""],
        ],
    )
    assert t_ascii > 2.0 * t_npz  # binary write is far cheaper


def test_e12_round_trips_preserve_mesh(benchmark, big_mesh,
                                       tmp_path_factory):
    tmp = tmp_path_factory.mktemp("io_rt")
    write_mesh_ascii(tmp / "m", big_mesh)
    write_mesh_npz(tmp / "m.npz", big_mesh)

    got_a = benchmark.pedantic(lambda: read_mesh_ascii(tmp / "m"),
                               rounds=1, iterations=1)
    got_b = read_mesh_npz(tmp / "m.npz")
    np.testing.assert_array_equal(got_a.points, big_mesh.points)
    np.testing.assert_array_equal(got_b.triangles, big_mesh.triangles)
