"""E9 / Figs. 14-15: pressure and Mach flow fields on the generated mesh.

Paper: FUN3D on the 30p30n mesh at M = 0.3, Re = 1e6, alpha = 5 deg shows
high pressure underneath / low on top (lift, Fig. 14), stagnation points
on the undersides, and accelerated flow (high Mach) over the upper
surfaces (Fig. 15).  Our potential-flow stand-in reproduces exactly those
qualitative features on the push-button mesh.
"""

import numpy as np
import pytest

from repro.solver.flow import solve_potential_flow

from conftest import print_table


def test_fig14_pressure_field(benchmark, naca_mesh_result):
    pslg, config, result = naca_mesh_result
    body = pslg.loop_points(pslg.loops[0])

    res = benchmark.pedantic(
        lambda: solve_potential_flow(result.mesh, [body], u_inf=1.0,
                                     alpha_deg=5.0, mach_inf=0.3),
        rounds=1, iterations=1,
    )
    cents = result.mesh.centroids()
    near = np.abs(cents[:, 0] - 0.4) < 0.35
    above = near & (cents[:, 1] > 0.04) & (cents[:, 1] < 0.3)
    below = near & (cents[:, 1] < -0.04) & (cents[:, 1] > -0.3)
    cl = res.lift_coefficient()
    print_table(
        "Fig. 14 — pressure (paper: high below / low above -> high lift)",
        ["quantity", "value"],
        [
            ["Cl", f"{cl:+.3f}"],
            ["mean Cp below", f"{res.cp[below].mean():+.3f}"],
            ["mean Cp above", f"{res.cp[above].mean():+.3f}"],
        ],
    )
    assert cl > 0.2                     # positive lift at +5 deg
    assert res.cp[below].mean() > res.cp[above].mean()


def test_fig15_mach_field_and_stagnation(benchmark, naca_mesh_result):
    pslg, config, result = naca_mesh_result
    body = pslg.loop_points(pslg.loops[0])
    res = benchmark.pedantic(
        lambda: solve_potential_flow(result.mesh, [body], u_inf=1.0,
                                     alpha_deg=5.0, mach_inf=0.3),
        rounds=1, iterations=1,
    )
    cents = result.mesh.centroids()
    stag = res.stagnation_elements(frac=0.25)
    stag_pts = cents[stag]
    # Distance of the nearest stagnation element to the leading edge.
    d_le = float(np.min(np.hypot(stag_pts[:, 0], stag_pts[:, 1])))
    # Stagnation on the underside (positive alpha): lowest-speed element
    # near the nose sits below the chord line.
    nose = stag_pts[np.argmin(np.hypot(stag_pts[:, 0], stag_pts[:, 1]))]
    upper = (cents[:, 1] > 0.02) & (cents[:, 0] > 0.05) & (cents[:, 0] < 0.6)
    print_table(
        "Fig. 15 — Mach (paper: stagnation on the underside, acceleration "
        "above; M_inf = 0.3)",
        ["quantity", "value"],
        [
            ["peak local Mach", f"{res.mach.max():.3f}"],
            ["mean upper-surface Mach", f"{res.mach[upper].mean():.3f}"],
            ["stagnation elements", len(stag)],
            ["nearest stagnation to LE", f"{d_le:.3f}"],
            ["stagnation y (underside < 0)", f"{nose[1]:+.4f}"],
        ],
    )
    assert res.mach.max() > 0.3          # acceleration past freestream
    assert len(stag) > 0
    assert d_le < 0.2                    # stagnation point at the nose
    assert nose[1] < 0.02                # on/below the chord line at +alpha


def test_fig14_multi_element_gap_acceleration(benchmark,
                                              highlift_mesh_result):
    """Paper Fig. 15: the fluid accelerates through the slat/main gap."""
    pslg, config, result = highlift_mesh_result
    bodies = [pslg.loop_points(lp) for lp in pslg.body_loops]
    res = benchmark.pedantic(
        lambda: solve_potential_flow(result.mesh, bodies, u_inf=1.0,
                                     alpha_deg=5.0, mach_inf=0.3),
        rounds=1, iterations=1,
    )
    speed = np.linalg.norm(res.velocity, axis=1)
    cents = result.mesh.centroids()
    # The slat/main gap region of the synthetic configuration.
    gap = ((cents[:, 0] > -0.08) & (cents[:, 0] < 0.12)
           & (cents[:, 1] > -0.12) & (cents[:, 1] < 0.05))
    far = np.hypot(cents[:, 0] - 0.5, cents[:, 1]) > 5.0
    print_table(
        "Fig. 15 — gap acceleration (multi-element)",
        ["quantity", "value"],
        [
            ["max gap speed / U_inf", f"{speed[gap].max():.2f}"],
            ["median far-field speed / U_inf",
             f"{np.median(speed[far]):.2f}"],
        ],
    )
    assert speed[gap].max() > 1.05 * np.median(speed[far])
