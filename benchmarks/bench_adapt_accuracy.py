"""Accuracy-per-DOF benchmark: metric adaptation vs uniform refinement.

The point of the whole metric stack — Hessian recovery, gradation
limiting, the local-operation adaptor — is that a metric-adapted mesh
reaches a target solution accuracy at far fewer degrees of freedom than
uniform refinement.  This benchmark measures that directly on the
shear-layer model problem of :mod:`repro.solver.adapt` (closed-form
solution, so errors are exact):

* **Uniform track** — solve on uniformly refined unit-square meshes of
  decreasing target area; record (DOF, L2 error) per level.
* **Adapted track** — run :func:`repro.solver.adapt.adapt_loop` from a
  coarse mesh; record (DOF, L2 error) per cycle.

Acceptance gate: at the fixed target error (the adapted track's final
error), the uniform track must need **>= 2x the DOF** — interpolated on
the uniform (log DOF, log error) line.  The gate is enforced in full
mode and reported (never enforced) with ``--smoke``.

Emits ``BENCH_adapt_accuracy.json`` next to the repo root::

    PYTHONPATH=src python benchmarks/bench_adapt_accuracy.py [--smoke]
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.delaunay import refine_pslg  # noqa: E402
from repro.solver.adapt import (  # noqa: E402
    ShearLayerProblem,
    adapt_loop,
    l2_error,
    solve_on_mesh,
)

GATE_DOF_ADVANTAGE = 2.0

UNIT_SQUARE = np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]])
SQUARE_SEGS = np.array([[0, 1], [1, 2], [2, 3], [3, 0]])


def square_mesh(max_area: float):
    return refine_pslg(UNIT_SQUARE.copy(), SQUARE_SEGS.copy(),
                       max_area=max_area)


def uniform_track(problem: ShearLayerProblem, areas) -> list:
    rows = []
    for area in areas:
        mesh = square_mesh(area)
        t0 = time.perf_counter()
        u = solve_on_mesh(mesh, problem)
        err = l2_error(mesh, u, problem)
        rows.append({
            "max_area": area,
            "dof": mesh.n_points,
            "error": err,
            "seconds": round(time.perf_counter() - t0, 3),
        })
        print(f"  uniform  area {area:9.2e}  dof {mesh.n_points:>7}  "
              f"err {err:.3e}")
    return rows


def adapted_track(problem: ShearLayerProblem, *, cycles, eps, h_min,
                  h_max) -> list:
    t0 = time.perf_counter()
    res = adapt_loop(square_mesh(0.02), problem=problem, cycles=cycles,
                     eps=eps, h_min=h_min, h_max=h_max)
    dt = time.perf_counter() - t0
    rows = []
    for c in res.history:
        rows.append({"cycle": c.cycle, "dof": c.dof, "error": c.error})
        print(f"  adapted  cycle {c.cycle}  dof {c.dof:>7}  "
              f"err {c.error:.3e}")
    rows[-1]["seconds"] = round(dt, 3)
    return rows


def uniform_dof_at_error(rows, target_error: float) -> float:
    """DOF the uniform track needs for ``target_error``.

    Fits the convergence line ``err ~ C * dof^(-p)`` on the *asymptotic
    tail* of the uniform samples (the finest levels, where the layer is
    resolved and the P1 rate holds; pre-asymptotic coarse levels would
    flatten the fitted slope and understate the required DOF) and reads
    the target error off that line.
    """
    tail = rows[-2:] if len(rows) >= 2 else rows
    dof = np.log([r["dof"] for r in tail])
    err = np.log([r["error"] for r in tail])
    slope, intercept = np.polyfit(dof, err, 1)
    if slope >= 0:
        return math.inf  # not converging: any finite target unreachable
    return float(np.exp((math.log(target_error) - intercept) / slope))


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="CI smoke: tiny case, gate reported but never "
                    "enforced")
    ap.add_argument("--out", type=Path,
                    default=REPO_ROOT / "BENCH_adapt_accuracy.json",
                    help="JSON output path")
    ap.add_argument("--no-check", action="store_true",
                    help="report only; never fail the gate")
    args = ap.parse_args(argv)

    if args.smoke:
        problem = ShearLayerProblem(delta=0.1, amplitude=0.1)
        areas = [0.01, 0.0025]
        loop_kwargs = dict(cycles=2, eps=4e-2, h_min=5e-3, h_max=0.3)
    else:
        problem = ShearLayerProblem(delta=0.05, amplitude=0.1)
        areas = [0.02, 0.005, 0.00125, 0.0003125, 7.8125e-05]
        loop_kwargs = dict(cycles=5, eps=1e-2, h_min=1e-3, h_max=0.3)

    print("uniform refinement track:")
    uni = uniform_track(problem, areas)
    print("metric adaptation track:")
    ada = adapted_track(problem, **loop_kwargs)

    # Best cycle of the adapted track: the loop stops when the error
    # flattens, and the final cycle can sit marginally above the best
    # one (the eps floor), which is noise, not accuracy.
    best = min(ada, key=lambda r: r["error"])
    target = best["error"]
    dof_adapted = best["dof"]
    dof_uniform = uniform_dof_at_error(uni, target)
    advantage = dof_uniform / dof_adapted
    print(f"target error {target:.3e}: adapted dof {dof_adapted}, "
          f"uniform needs ~{dof_uniform:.0f}  "
          f"(advantage {advantage:.2f}x, gate {GATE_DOF_ADVANTAGE}x)")

    enforced = not (args.smoke or args.no_check)
    passed = advantage >= GATE_DOF_ADVANTAGE
    ok = passed or not enforced
    if not passed:
        print(f"{'FAIL' if enforced else 'note'}: DOF advantage "
              f"{advantage:.2f}x below the {GATE_DOF_ADVANTAGE}x gate")

    payload = {
        "bench": "adapt_accuracy",
        "problem": {"delta": problem.delta,
                    "amplitude": problem.amplitude},
        "smoke": bool(args.smoke),
        "uniform": uni,
        "adapted": ada,
        "target_error": target,
        "dof_adapted": dof_adapted,
        "dof_uniform_at_target": (None if math.isinf(dof_uniform)
                                  else round(dof_uniform, 1)),
        "dof_advantage": (None if math.isinf(dof_uniform)
                          else round(advantage, 3)),
        "gate": {"threshold": GATE_DOF_ADVANTAGE,
                 "enforced": bool(enforced),
                 "passed": bool(passed)},
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
