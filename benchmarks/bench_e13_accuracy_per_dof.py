"""E13 (extension of Fig. 16): accuracy per degree of freedom.

The paper's motivation — "representing these regions with isotropic
elements incurs a multiple orders of magnitude fold increase in the
number of elements" (Section I) — tested on a manufactured boundary-layer
solution where the error is exactly measurable:

    -eps Lap(u) + u = 0,   u = exp(-y / sqrt(eps)).

Sweeping the layer strength eps, we report the L2 error of a layered
anisotropic mesh vs. an isotropic quality mesh of the same DOF budget,
and the DOF multiple the isotropic mesh needs to match the anisotropic
accuracy.
"""

import math

import numpy as np
import pytest

from repro.solver.blmodel import isotropic_mesh, layered_mesh, solve_bl_model

from conftest import print_table


def test_e13_error_at_equal_dof(benchmark):
    def run():
        rows = []
        for eps in (1e-3, 1e-4, 2.5e-5):
            res_a = solve_bl_model(layered_mesh(eps, nx=20), eps)
            res_i = solve_bl_model(isotropic_mesh(res_a.n_dof), eps)
            rows.append((eps, res_a, res_i))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = []
    for eps, ra, ri in rows:
        table.append([
            f"{eps:.0e}", ra.n_dof, f"{ra.l2_error:.2e}",
            ri.n_dof, f"{ri.l2_error:.2e}",
            f"{ri.l2_error / max(ra.l2_error, 1e-300):.0f}x",
        ])
    print_table(
        "E13 — L2 error at comparable DOF (aniso layered vs iso quality)",
        ["eps", "aniso DOF", "aniso L2", "iso DOF", "iso L2",
         "error ratio"], table,
    )
    for eps, ra, ri in rows:
        assert ra.l2_error < ri.l2_error
    # The thinner the layer, the bigger the anisotropic advantage.
    ratios = [ri.l2_error / ra.l2_error for _, ra, ri in rows]
    assert ratios[-1] > ratios[0]


def test_e13_dof_multiple_to_match(benchmark):
    eps = 1e-4

    def run():
        res_a = solve_bl_model(layered_mesh(eps, nx=20), eps)
        sweep = []
        for mult in (1, 4, 16, 64):
            res_i = solve_bl_model(isotropic_mesh(mult * res_a.n_dof), eps)
            sweep.append((mult, res_i))
            if res_i.l2_error <= res_a.l2_error:
                break
        return res_a, sweep

    res_a, sweep = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [["anisotropic", res_a.n_dof, f"{res_a.l2_error:.2e}", ""]]
    for mult, ri in sweep:
        rows.append([f"iso x{mult}", ri.n_dof, f"{ri.l2_error:.2e}",
                     "matched" if ri.l2_error <= res_a.l2_error else ""])
    print_table(
        "E13 — isotropic DOF multiple needed to match anisotropic accuracy "
        "(paper: 'multiple orders of magnitude fold increase')",
        ["mesh", "DOF", "L2 error", ""], rows,
    )
    matched = [m for m, ri in sweep if ri.l2_error <= res_a.l2_error]
    # Either it took a large multiple, or it never matched in the sweep.
    assert (not matched) or matched[0] >= 4
