"""E10 / Fig. 16: anisotropic vs isotropic mesh convergence.

Paper: the anisotropic mesh (360,241 triangles) converges the
conservation-of-mass residual to 1e-12 in ~5,000 iterations; the
isotropic mesh of the same geometry and sizing (5,314,372 triangles —
14.8x more elements, all angles > 20.7 deg) needs ~10,000.  We reproduce
the comparison at laptop scale: same surface distribution, same
gradation, wall-normal resolution met anisotropically (BL) vs
isotropically (quality refinement to the wall spacing), identical solver
(Jacobi-PCG on the streamfunction/mass-conservation Laplacian) to 1e-12.
"""

import numpy as np
import pytest

from repro.core.bl_pipeline import BoundaryLayerConfig
from repro.core.pipeline import MeshConfig, generate_mesh
from repro.delaunay.refine import RUPPERT_BOUND, refine_pslg
from repro.geometry.airfoils import naca0012
from repro.geometry.pslg import PSLG
from repro.sizing.functions import GradedDistanceSizing
from repro.solver.convergence import jacobi, pcg
from repro.solver.fem import apply_dirichlet, assemble_stiffness, boundary_nodes

from conftest import print_table

FIRST_SPACING = 1e-4
FARFIELD = 6.0


@pytest.fixture(scope="module")
def meshes():
    pslg = PSLG.from_loops([naca0012(81)])
    config = MeshConfig(
        bl=BoundaryLayerConfig(first_spacing=FIRST_SPACING,
                               growth_ratio=1.3, max_layers=40),
        farfield_chords=FARFIELD,
        target_subdomains=8,
    )
    aniso = generate_mesh(pslg, config).mesh

    af = naca0012(81)
    half = FARFIELD
    box = np.array([(0.5 - half, -half), (0.5 + half, -half),
                    (0.5 + half, half), (0.5 - half, half)])
    pts = np.vstack([af, box])
    n = len(af)
    segs = np.array([(i, (i + 1) % n) for i in range(n)]
                    + [(n + i, n + (i + 1) % 4) for i in range(4)])
    sizing = GradedDistanceSizing(af, h0=FIRST_SPACING, grading=0.35,
                                  h_max=3.0)
    iso = refine_pslg(pts, segs, holes=[(0.5, 0.0)],
                      area_fn=sizing.area_at,
                      min_edge_floor=FIRST_SPACING / 8)
    return aniso, iso


def _mass_conservation_solve(mesh, solver):
    K = assemble_stiffness(mesh)
    bn = boundary_nodes(mesh)
    g = mesh.points[:, 1]  # freestream streamfunction
    A, b = apply_dirichlet(K, np.zeros(mesh.n_points), bn, g[bn])
    return solver(A, b), A.nnz


def test_fig16_element_counts(benchmark, meshes):
    aniso, iso = benchmark.pedantic(lambda: meshes, rounds=1, iterations=1)
    ratio = iso.n_triangles / aniso.n_triangles
    iso_min_angle = float(np.degrees(iso.min_angle()))
    print_table(
        "Fig. 16 — element counts (paper: 360,241 vs 5,314,372 = 14.8x)",
        ["mesh", "triangles", "min angle"],
        [
            ["anisotropic", aniso.n_triangles,
             f"{np.degrees(aniso.min_angle()):.2f} deg"],
            ["isotropic", iso.n_triangles, f"{iso_min_angle:.2f} deg"],
            ["ratio", f"{ratio:.1f}x", ""],
        ],
    )
    # The isotropic mesh pays a large multiple for the wall resolution.
    assert ratio > 3.0
    # The isotropic mesh is a quality mesh away from the guarded cusp
    # (paper: all angles above 20.7 degrees).
    ratios = iso.radius_edge_ratios()
    assert (ratios <= RUPPERT_BOUND + 1e-9).mean() > 0.98


def test_fig16_convergence_iterations(benchmark, meshes):
    aniso, iso = meshes

    def run():
        (ra, nnz_a) = _mass_conservation_solve(
            aniso, lambda A, b: pcg(A, b, tol=1e-12, max_iter=400_000))
        (ri, nnz_i) = _mass_conservation_solve(
            iso, lambda A, b: pcg(A, b, tol=1e-12, max_iter=400_000))
        return ra, nnz_a, ri, nnz_i

    ra, nnz_a, ri, nnz_i = benchmark.pedantic(run, rounds=1, iterations=1)
    work_a = ra.iterations * nnz_a
    work_i = ri.iterations * nnz_i
    print_table(
        "Fig. 16 — residual convergence to 1e-12 "
        "(paper: ~5,000 vs ~10,000 iterations)",
        ["mesh", "triangles", "iterations", "work (it*nnz)"],
        [
            ["anisotropic", aniso.n_triangles, ra.iterations,
             f"{work_a:.2e}"],
            ["isotropic", iso.n_triangles, ri.iterations, f"{work_i:.2e}"],
            ["ratio", f"{iso.n_triangles / aniso.n_triangles:.1f}x",
             f"{ri.iterations / max(ra.iterations, 1):.2f}x",
             f"{work_i / max(work_a, 1):.1f}x"],
        ],
    )
    assert ra.converged and ri.converged
    # Residual histories decay to the tolerance (the Fig. 16 curves).
    assert ra.residuals[-1] <= 1e-12
    assert ri.residuals[-1] <= 1e-12
    # The anisotropic mesh reaches the same tolerance with less total
    # work — the CPU-savings claim behind Fig. 16.
    assert work_a < work_i


def test_fig16_residual_history_shape(benchmark, meshes):
    """The Fig. 16 curves: monotone-envelope decay over ~4 decades before
    the tolerance, for both meshes."""
    aniso, _ = meshes
    (res, _nnz) = benchmark.pedantic(
        lambda: _mass_conservation_solve(
            aniso, lambda A, b: pcg(A, b, tol=1e-12, max_iter=400_000)),
        rounds=1, iterations=1,
    )
    hist = np.asarray(res.residuals)
    # Sample the curve as the paper's figure does.
    idx = np.unique(np.linspace(0, len(hist) - 1, 8).astype(int))
    rows = [[int(i), f"{hist[i]:.2e}"] for i in idx]
    print_table("Fig. 16 — residual history (anisotropic mesh)",
                ["iteration", "relative residual"], rows)
    # Envelope decreases by orders of magnitude.
    assert hist[0] / hist[-1] > 1e8
