"""E3 / Section IV text: single-rank efficiency vs the plain sequential mesher.

Paper: Triangle sequentially meshes the domain in 192 s; the decoupled
pipeline on one process takes 196 s (98% sequential efficiency), the gap
being "the additional triangles created by the inviscid decoupling
method".  Here we mesh the same region once as a single monolithic
refinement and once through quadrant decoupling, comparing wall time and
triangle counts.
"""

import time

import numpy as np
import pytest

from repro.core.decouple import decouple, initial_quadrants, refine_subdomain
from repro.delaunay.mesh import merge_meshes
from repro.delaunay.refine import refine_pslg
from repro.geometry.aabb import AABB
from repro.sizing.functions import RadialSizing

from conftest import print_table


def test_e3_sequential_overhead(benchmark):
    sizing = RadialSizing((0, 0), h0=0.006, grading=0.05, h_max=1.0)
    inner = AABB(-1, -1, 1, 1)
    outer = AABB(-12, -12, 12, 12)

    def run():
        # Monolithic sequential refinement of the whole annulus ("Triangle").
        ring = []
        for box, rev in ((outer, False), (inner, True)):
            c = [(box.xmin, box.ymin), (box.xmax, box.ymin),
                 (box.xmax, box.ymax), (box.xmin, box.ymax)]
            ring.append(list(reversed(c)) if rev else c)
        pts = np.asarray(ring[0] + ring[1], dtype=float)
        segs = np.array([(i, (i + 1) % 4) for i in range(4)]
                        + [(4 + i, 4 + (i + 1) % 4) for i in range(4)])
        t0 = time.perf_counter()
        mono = refine_pslg(pts, segs, holes=[(0.0, 0.0)],
                           area_fn=sizing.area_at)
        t_mono = time.perf_counter() - t0

        # Decoupled pipeline on one rank.
        t0 = time.perf_counter()
        quads = initial_quadrants(inner, outer, sizing)
        subs = decouple(quads, sizing, target_count=16)
        meshes = [refine_subdomain(s, sizing) for s in subs]
        merged = merge_meshes(meshes)
        t_dec = time.perf_counter() - t0
        return mono, merged, t_mono, t_dec

    mono, merged, t_mono, t_dec = benchmark.pedantic(run, rounds=1,
                                                     iterations=1)
    extra_tris = merged.n_triangles - mono.n_triangles
    eff = t_mono / t_dec
    print_table(
        "E3 — sequential efficiency (paper: 192 s vs 196 s = 98%, "
        "overhead = extra decoupling triangles)",
        ["variant", "triangles", "time"],
        [
            ["monolithic", mono.n_triangles, f"{t_mono:.2f}s"],
            ["decoupled x16", merged.n_triangles, f"{t_dec:.2f}s"],
            ["ratio", f"{merged.n_triangles / mono.n_triangles:.3f}",
             f"eff {eff:.0%}"],
        ],
    )
    # Same region covered.
    assert np.abs(merged.areas()).sum() == pytest.approx(
        np.abs(mono.areas()).sum(), rel=1e-9)
    # The decoupled mesh has a few percent more triangles (graded internal
    # borders) — the paper's stated source of its 2% overhead.
    assert 0 <= extra_tris < 0.10 * mono.n_triangles
    # Sequential efficiency: the paper reports 98% at 1.7e8-triangle
    # scale; at this 2e4-triangle laptop scale the per-subdomain fixed
    # costs are not yet amortised, so the band is wider (see
    # EXPERIMENTS.md).
    assert eff > 0.40
    assert merged.is_conforming()
