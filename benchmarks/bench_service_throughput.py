"""Meshing-as-a-service throughput benchmark and acceptance gate.

The service exists to amortize per-job startup across many requests:
one warm daemon vs a fork-per-call CLI that pays interpreter boot,
imports and executor setup for every mesh.  This bench drives a live
daemon with a repeated-request workload from concurrent clients and
enforces the PR's acceptance gates:

1. **warm-cache hit ratio >= 0.9** on the repeated-request workload
   (each distinct request misses once, every repeat is a content hit);
2. **byte-identical results** — every served mesh equals a direct
   ``generate_mesh`` run of the same request, hit or miss;
3. **p50 warm-request latency below fork-per-call CLI startup** — the
   time to serve a cached mesh over the socket must undercut merely
   *starting* ``repro-mesh`` (interpreter + imports + parser), the
   floor of any fork-per-call invocation.

Also reported: requests/sec, latency percentiles (p50/p99), mean batch
size, and the daemon's own counter snapshot.  Emits
``BENCH_service_throughput.json`` next to the repo root (one
trajectory point per run) and prints a table.

Run directly::

    PYTHONPATH=src python benchmarks/bench_service_throughput.py [--smoke]
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.bl_pipeline import BoundaryLayerConfig  # noqa: E402
from repro.core.pipeline import (  # noqa: E402
    MeshConfig,
    generate_mesh,
    pack_mesh_request,
)
from repro.geometry.airfoils import naca4  # noqa: E402
from repro.geometry.pslg import PSLG  # noqa: E402
from repro.runtime import serde  # noqa: E402
from repro.runtime.client import ServiceClient  # noqa: E402
from repro.runtime.service import (  # noqa: E402
    MeshService,
    ServiceThread,
    percentile,
)

HIT_RATIO_GATE = 0.9
CLI_STARTUP_RUNS = 3


def build_workload(smoke: bool):
    """Distinct (PSLG, MeshConfig) cases; repeats come from scheduling."""
    if smoke:
        specs = [("0012", 31, 0.30), ("0012", 31, 0.35), ("2412", 31, 0.35)]
        layers, reps = 6, 15
    else:
        specs = [("0012", 61, 0.30), ("0012", 61, 0.35),
                 ("2412", 61, 0.35), ("4412", 61, 0.35)]
        layers, reps = 12, 20
    cases = []
    for code, n_points, grading in specs:
        pslg = PSLG.from_loops([naca4(code, n_points)],
                               names=[f"naca{code}"])
        config = MeshConfig(
            bl=BoundaryLayerConfig(first_spacing=2e-3, growth_ratio=1.4,
                                   max_layers=layers),
            farfield_chords=5.0, grading=grading, target_subdomains=4)
        cases.append((pslg, config))
    return cases, reps


def measure_cli_startup() -> float:
    """Median wall time to boot the CLI to a built parser — the floor
    of any fork-per-call ``repro-mesh`` invocation."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    times = []
    for _ in range(CLI_STARTUP_RUNS):
        t0 = time.perf_counter()
        subprocess.run(
            [sys.executable, "-c",
             "import repro.cli as c; c.build_parser()"],
            check=True, env=env, cwd=str(REPO_ROOT),
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        times.append(time.perf_counter() - t0)
    return percentile(times, 50.0)


def drive_service(endpoint, cases, reps, direct, n_clients):
    """Submit ``reps`` rounds of every case from ``n_clients`` threads.

    Returns per-request records ``(case_idx, kind, elapsed_s, match)``.
    """
    schedule = []
    for rep in range(reps):
        for idx in range(len(cases)):
            schedule.append(idx)
    payloads = [pack_mesh_request(pslg, config) for pslg, config in cases]
    records = []
    lock = threading.Lock()
    cursor = [0]

    def worker():
        with ServiceClient(endpoint) as client:
            while True:
                with lock:
                    if cursor[0] >= len(schedule):
                        return
                    idx = schedule[cursor[0]]
                    cursor[0] += 1
                t0 = time.perf_counter()
                kind, blob = client.submit_packed(payloads[idx])
                elapsed = time.perf_counter() - t0
                with lock:
                    records.append((idx, kind, elapsed,
                                    blob == direct[idx]))

    threads = [threading.Thread(target=worker) for _ in range(n_clients)]
    t_wall = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - t_wall
    return records, wall


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small cases for CI")
    parser.add_argument("--backend", default="serial",
                        help="service executor backend (default serial)")
    parser.add_argument("--clients", type=int, default=3,
                        help="concurrent client threads (default 3)")
    parser.add_argument("--no-check", action="store_true",
                        help="report without enforcing the gates")
    parser.add_argument("--out", type=Path,
                        default=REPO_ROOT / "BENCH_service_throughput.json")
    args = parser.parse_args(argv)

    cases, reps = build_workload(args.smoke)
    print(f"workload: {len(cases)} distinct cases x {reps} reps, "
          f"{args.clients} clients, backend={args.backend}")

    print("meshing reference results directly ...")
    direct = []
    for pslg, config in cases:
        result = generate_mesh(pslg, config, backend="serial")
        direct.append(serde.buffers_to_bytes(serde.pack_mesh(result.mesh)))

    cli_startup = measure_cli_startup()
    print(f"fork-per-call CLI startup floor: {cli_startup * 1e3:.1f} ms "
          f"(median of {CLI_STARTUP_RUNS})")

    with tempfile.TemporaryDirectory() as td:
        service = MeshService(f"unix:{td}/bench.sock",
                              backend=args.backend, batch_window=0.002)
        thread = ServiceThread(service)
        endpoint = thread.start()
        try:
            records, wall = drive_service(endpoint, cases, reps, direct,
                                          args.clients)
            server = service.stats()
        finally:
            thread.stop()

    total = len(records)
    hits = sum(1 for _, kind, _, _ in records if kind == "mesh-hit")
    mismatches = sum(1 for _, _, _, match in records if not match)
    hit_ratio = hits / total if total else 0.0
    warm = sorted(t for _, kind, t, _ in records if kind == "mesh-hit")
    all_lat = [t for _, _, t, _ in records]
    p50_warm = percentile(warm, 50.0)
    p99_warm = percentile(warm, 99.0)

    print(f"requests: {total} in {wall:.2f}s "
          f"({total / wall:.0f} req/s overall)")
    print(f"hit ratio: {hit_ratio:.3f} (server: "
          f"{server['hit_ratio']:.3f}); mean batch "
          f"{server['batch_size_mean']:.2f}")
    print(f"warm latency: p50 {p50_warm * 1e3:.2f} ms, "
          f"p99 {p99_warm * 1e3:.2f} ms; all-request p50 "
          f"{percentile(all_lat, 50.0) * 1e3:.2f} ms")

    ok = True
    enforced = not args.no_check
    checks = [
        ("hit-ratio", hit_ratio >= HIT_RATIO_GATE,
         f"warm-cache hit ratio {hit_ratio:.3f} vs >= {HIT_RATIO_GATE}"),
        ("byte-identical", mismatches == 0,
         f"{mismatches} served result(s) differ from direct "
         "generate_mesh"),
        ("warm-latency", p50_warm < cli_startup,
         f"p50 warm {p50_warm * 1e3:.2f} ms vs CLI startup "
         f"{cli_startup * 1e3:.1f} ms"),
    ]
    for name, passed, detail in checks:
        tag = "PASS" if passed else ("FAIL" if enforced else "WARN")
        print(f"{tag}: {name}: {detail}")
        if enforced and not passed:
            ok = False

    payload = {
        "bench": "service_throughput",
        "case": {
            "distinct_cases": len(cases),
            "reps": reps,
            "clients": args.clients,
            "backend": args.backend,
            "smoke": bool(args.smoke),
        },
        "requests": total,
        "wall_s": round(wall, 3),
        "requests_per_s": round(total / wall, 1) if wall else None,
        "hit_ratio": round(hit_ratio, 4),
        "mismatches": mismatches,
        "cli_startup_s": round(cli_startup, 4),
        "latency": {
            "warm_p50_s": round(p50_warm, 6),
            "warm_p99_s": round(p99_warm, 6),
            "all_p50_s": round(percentile(all_lat, 50.0), 6),
            "all_p99_s": round(percentile(all_lat, 99.0), 6),
        },
        "server": {k: round(v, 6) for k, v in server.items()},
        "gate": {
            "hit_ratio_threshold": HIT_RATIO_GATE,
            "enforced": bool(enforced),
            "passed": bool(ok),
        },
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
