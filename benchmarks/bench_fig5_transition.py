"""E7 / Fig. 5: smooth transition from the BL to the isotropic region.

Paper Fig. 5 shows the main slat with *different boundary-layer heights*
along the surface so the outermost BL elements are already isotropic
where the unstructured region begins.  We measure (a) the last-layer
anisotropy ratio (normal spacing / tangential spacing) — it should be
near 1 everywhere — and (b) the BL height variation along the surface.
"""

import numpy as np
import pytest

from repro.core.bl_pipeline import BoundaryLayerConfig, generate_boundary_layer
from repro.geometry.airfoils import naca0012
from repro.geometry.pslg import PSLG

from conftest import print_table


def test_fig5_isotropy_handoff(benchmark):
    pslg = PSLG.from_loops([naca0012(121)])
    cfg = BoundaryLayerConfig(first_spacing=5e-4, growth_ratio=1.25,
                              max_layers=100)

    res = benchmark.pedantic(
        lambda: generate_boundary_layer(pslg, cfg),
        rounds=1, iterations=1,
    )
    rays = res.element_rays[0]
    ratios = []
    heights = []
    for r in rays:
        if len(r.heights) >= 2 and np.isinf(r.max_height):
            last_spacing = r.heights[-1] - r.heights[-2]
            if r.surface_spacing > 0:
                ratios.append(last_spacing / r.surface_spacing)
            heights.append(r.heights[-1])
    ratios = np.asarray(ratios)
    heights = np.asarray(heights)
    print_table(
        "Fig. 5 — BL outermost-layer anisotropy and height variation",
        ["metric", "value"],
        [
            ["rays measured", len(ratios)],
            ["last-layer spacing / tangential spacing (median)",
             f"{np.median(ratios):.2f}"],
            ["... 10th-90th percentile",
             f"{np.percentile(ratios, 10):.2f} - "
             f"{np.percentile(ratios, 90):.2f}"],
            ["BL height min/max", f"{heights.min():.4f} / {heights.max():.4f}"],
            ["height variation (max/min)",
             f"{heights.max() / max(heights.min(), 1e-300):.1f}x"],
        ],
    )
    # The hand-off makes the outermost layer ~isotropic: the median ratio
    # sits below ~1.3 (it approaches 1 from below at termination) and no
    # ray stops while still strongly anisotropic upward.
    assert 0.25 <= np.median(ratios) <= 1.3
    assert np.percentile(ratios, 90) <= 2.0
    # Heights vary along the surface (cosine clustering -> thin BL at the
    # finely resolved LE/TE, thick at mid-chord): Fig. 5's visual.
    assert heights.max() > 3 * heights.min()


def test_fig5_first_layer_respects_wall_spacing(benchmark):
    pslg = PSLG.from_loops([naca0012(61)])
    cfg = BoundaryLayerConfig(first_spacing=1e-3, growth_ratio=1.3,
                              max_layers=30)
    res = benchmark.pedantic(
        lambda: generate_boundary_layer(pslg, cfg), rounds=1, iterations=1,
    )
    firsts = [r.heights[0] for r in res.element_rays[0] if r.heights]
    assert np.allclose(firsts, 1e-3)
    print(f"\nFig. 5 — first-layer spacing uniform at {firsts[0]:.1e} "
          f"({len(firsts)} rays)")
