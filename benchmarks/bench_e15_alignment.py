"""E15 (extension of Section II.D): alignment & orthogonality preservation.

The paper protects "the alignment and orthogonality of the anisotropic
elements" (citing Loseille et al. for why they matter).  This benchmark
measures those properties on the push-button pipeline's final merged mesh:
stretched elements must align with the wall, and the full parallel
pipeline (decomposition + decoupling + merge) must not degrade them
relative to the sequentially produced boundary layer.
"""

import numpy as np
import pytest

from repro.analysis.metrics import alignment_to_surface, element_directions

from conftest import print_table


def test_e15_pipeline_alignment(benchmark, naca_mesh_result):
    pslg, config, result = naca_mesh_result
    surface = pslg.loop_points(pslg.loops[0])

    def run():
        full = alignment_to_surface(result.mesh, surface, min_ratio=5.0)
        bl_only = alignment_to_surface(result.bl.mesh, surface, min_ratio=5.0)
        return full, bl_only

    full, bl_only = benchmark.pedantic(run, rounds=1, iterations=1)
    _, ratio = element_directions(result.mesh)
    finite = ratio[np.isfinite(ratio)]
    print_table(
        "E15 — anisotropic alignment on the final merged mesh",
        ["quantity", "value"],
        [
            ["stretched elements (ratio >= 5)", len(full)],
            ["median alignment |cos| (merged mesh)",
             f"{np.median(full):.3f}"],
            ["median alignment |cos| (BL alone)",
             f"{np.median(bl_only):.3f}"],
            ["fraction above 0.9", f"{(full > 0.9).mean():.0%}"],
            ["max stretch ratio", f"{finite.max():.0f}"],
        ],
    )
    assert len(full) > 100
    # The wall-aligned structure survives the whole parallel pipeline.
    assert np.median(full) > 0.95
    assert (full > 0.9).mean() > 0.8
    # Merging decomposed/decoupled pieces did not degrade the BL alignment.
    assert np.median(full) >= np.median(bl_only) - 0.02


def test_e15_orthogonality_histogram(benchmark, naca_mesh_result):
    from repro.analysis.metrics import histogram

    pslg, config, result = naca_mesh_result
    surface = pslg.loop_points(pslg.loops[0])
    scores = benchmark.pedantic(
        lambda: alignment_to_surface(result.mesh, surface, min_ratio=3.0),
        rounds=1, iterations=1,
    )
    print()
    print(histogram(scores, bins=10,
                    label="E15 — |cos(long axis, wall tangent)|"))
    # Strongly bimodal toward 1.0: the boundary-layer stacking property.
    assert (scores > 0.95).mean() > 0.6
